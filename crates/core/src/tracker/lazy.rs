//! Lazy (replay-based) provenance — the paper's future-work direction.
//!
//! Section 8 of the paper proposes investigating *lazy* approaches in the
//! spirit of Ariadne's "replay lazy" operator instrumentation (Glavic et al.):
//! instead of maintaining provenance proactively at every interaction, keep
//! only the cheap NoProv state plus the interaction log, and compute
//! provenance *on demand* by replaying the relevant prefix of the log through
//! an instrumented tracker.
//!
//! The trade-off is the classic eager-vs-lazy one:
//!
//! * processing cost drops to Algorithm 1's O(1) per interaction and the
//!   memory to the log itself;
//! * every provenance query costs a replay of the prefix up to the query
//!   time, under whichever selection policy the caller asks for.
//!
//! This also gives *time-travel* queries for free: `origins_at` answers
//! `O(t, B_v)` for any past time `t`, which the eager trackers cannot do
//! without external snapshots.

use crate::error::Result;
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{vec_bytes, FootprintBreakdown};
use crate::origins::OriginSet;
use crate::policy::{PolicyConfig, SelectionPolicy};
use crate::quantity::Quantity;
use crate::tracker::{build_tracker, no_prov::NoProvTracker, ProvenanceTracker};

/// Lazy provenance: log the interactions, replay on demand.
#[derive(Debug)]
pub struct LazyReplayProvenance {
    /// The default policy used when a query does not specify one.
    default_policy: PolicyConfig,
    /// Cheap eager state so `buffered` stays O(1).
    baseline: NoProvTracker,
    /// The full interaction log, in processing order.
    log: Vec<Interaction>,
}

impl LazyReplayProvenance {
    /// Create a lazy tracker whose queries default to the given policy.
    pub fn new(num_vertices: usize, default_policy: PolicyConfig) -> Self {
        LazyReplayProvenance {
            default_policy,
            baseline: NoProvTracker::new(num_vertices),
            log: Vec::new(),
        }
    }

    /// Create a lazy tracker defaulting to proportional (sparse) queries.
    pub fn proportional(num_vertices: usize) -> Self {
        Self::new(
            num_vertices,
            PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
        )
    }

    /// Number of logged interactions.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Replay the log up to (and including) time `t` under `policy` and
    /// return the resulting tracker. The replay cost is O(prefix length)
    /// tracker-processing work.
    pub fn replay_until(
        &self,
        t: f64,
        policy: &PolicyConfig,
    ) -> Result<Box<dyn ProvenanceTracker>> {
        let mut tracker = build_tracker(policy, self.baseline.num_vertices())?;
        for r in &self.log {
            if r.time.0 > t {
                break;
            }
            tracker.process(r);
        }
        Ok(tracker)
    }

    /// `O(t, B_v)` at an arbitrary past time `t` under an explicit policy.
    pub fn origins_at_with(&self, v: VertexId, t: f64, policy: &PolicyConfig) -> Result<OriginSet> {
        Ok(self.replay_until(t, policy)?.origins(v))
    }

    /// `O(t, B_v)` at an arbitrary past time `t` under the default policy.
    pub fn origins_at(&self, v: VertexId, t: f64) -> Result<OriginSet> {
        self.origins_at_with(v, t, &self.default_policy.clone())
    }

    /// `|B_v|` at an arbitrary past time `t` (replays only Algorithm 1, so it
    /// is cheaper than a provenance query).
    pub fn buffered_at(&self, v: VertexId, t: f64) -> Quantity {
        let mut baseline = NoProvTracker::new(self.baseline.num_vertices());
        for r in &self.log {
            if r.time.0 > t {
                break;
            }
            baseline.process(r);
        }
        baseline.buffered(v)
    }
}

// tin-lint: allow(tracker-conformance): lazy replay defers all tracking to query time over the whole log and is not shardable — it is never built by the sharded engine
impl ProvenanceTracker for LazyReplayProvenance {
    fn name(&self) -> &'static str {
        "Lazy (replay on demand)"
    }

    fn num_vertices(&self) -> usize {
        self.baseline.num_vertices()
    }

    fn process(&mut self, r: &Interaction) {
        self.baseline.process(r);
        self.log.push(*r);
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.baseline.buffered(v)
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        // Replay the entire log under the default policy.
        self.origins_at(v, f64::INFINITY)
            .expect("default policy was validated at construction")
    }

    fn footprint(&self) -> FootprintBreakdown {
        let base = self.baseline.footprint();
        FootprintBreakdown {
            entries_bytes: base.entries_bytes,
            paths_bytes: 0,
            index_bytes: vec_bytes(&self.log),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::proportional_sparse::ProportionalSparseTracker;
    use crate::tracker::receipt_order::ReceiptOrderTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn lazy_matches_eager_proportional_at_the_end() {
        let mut lazy = LazyReplayProvenance::proportional(3);
        let mut eager = ProportionalSparseTracker::new(3);
        for r in paper_running_example() {
            lazy.process(&r);
            eager.process(&r);
        }
        for i in 0..3u32 {
            assert!(qty_approx_eq(lazy.buffered(v(i)), eager.buffered(v(i))));
            assert!(lazy.origins(v(i)).approx_eq(&eager.origins(v(i))));
        }
        assert_eq!(lazy.log_len(), 6);
        assert!(lazy.check_all_invariants());
    }

    #[test]
    fn time_travel_queries_match_prefix_replay() {
        let rs = paper_running_example();
        let mut lazy = LazyReplayProvenance::proportional(3);
        lazy.process_all(&rs);
        // Query at time 4 (after the third interaction): compare with an
        // eager tracker fed only the prefix.
        let mut eager_prefix = ProportionalSparseTracker::new(3);
        eager_prefix.process_all(&rs[..3]);
        for i in 0..3u32 {
            let lazy_origins = lazy.origins_at(v(i), 4.0).unwrap();
            assert!(
                lazy_origins.approx_eq(&eager_prefix.origins(v(i))),
                "mismatch at v{i}"
            );
            assert!(qty_approx_eq(
                lazy.buffered_at(v(i), 4.0),
                eager_prefix.buffered(v(i))
            ));
        }
    }

    #[test]
    fn queries_can_use_any_policy() {
        let rs = paper_running_example();
        let mut lazy = LazyReplayProvenance::proportional(3);
        lazy.process_all(&rs);
        let mut lifo = ReceiptOrderTracker::lifo(3);
        lifo.process_all(&rs);
        let via_lazy = lazy
            .origins_at_with(
                v(2),
                f64::INFINITY,
                &PolicyConfig::Plain(SelectionPolicy::Lifo),
            )
            .unwrap();
        assert!(via_lazy.approx_eq(&lifo.origins(v(2))));
    }

    #[test]
    fn query_before_first_interaction_is_empty() {
        let mut lazy = LazyReplayProvenance::proportional(3);
        lazy.process_all(&paper_running_example());
        assert!(lazy.origins_at(v(0), 0.5).unwrap().is_empty());
        assert_eq!(lazy.buffered_at(v(0), 0.5), 0.0);
    }

    #[test]
    fn processing_cost_is_log_only() {
        let mut lazy = LazyReplayProvenance::proportional(3);
        lazy.process_all(&paper_running_example());
        let fp = lazy.footprint();
        // The only provenance state is the log itself (plus NoProv buffers).
        assert!(fp.index_bytes >= 6 * std::mem::size_of::<Interaction>());
        assert_eq!(fp.paths_bytes, 0);
        assert_eq!(lazy.name(), "Lazy (replay on demand)");
    }

    #[test]
    fn invalid_query_policy_is_an_error() {
        let mut lazy = LazyReplayProvenance::proportional(3);
        lazy.process_all(&paper_running_example());
        let bad = PolicyConfig::Selective { tracked: vec![] };
        assert!(lazy.origins_at_with(v(0), 10.0, &bad).is_err());
    }
}
