//! Backtracing provenance — on-demand queries over a pruned replay.
//!
//! Section 8 of the paper lists *backtracing methods* as future work: instead
//! of maintaining provenance annotations proactively, answer a provenance
//! query `O(t, B_v)` only when it is asked, by looking backwards from the
//! queried vertex. [`crate::tracker::lazy::LazyReplayProvenance`] already
//! replays the whole interaction prefix on demand; this module adds the
//! backtracing part: before replaying, it computes the set of vertices that
//! can reach `v` through a *time-respecting* path ending by `t`, and replays
//! only the interactions that touch this set.
//!
//! ## Why the pruned replay is exact
//!
//! Let `S` be the set of vertices `u` for which a sequence of interactions
//! `u → x₁ → … → v` exists with non-decreasing times, all ≤ `t` (computed by a
//! single reverse scan of the log). Replaying only the interactions whose
//! source **or** destination lies in `S` preserves the provenance answer at
//! `v`:
//!
//! * every interaction touching a vertex of `S` is replayed, so the buffered
//!   *quantities* of all vertices in `S` evolve exactly as in the full replay
//!   (selection under every policy depends only on arrival order / birth time
//!   / buffered amounts, which are identical);
//! * an interaction `a → u` whose source `a` is outside `S` delivers units to
//!   `u` that are (mis)attributed to `a` as newborn units in the pruned
//!   replay. By definition of `S`, those units can never take part in a
//!   time-respecting path from `u` to `v` by time `t` (otherwise `a ∈ S`), so
//!   the mis-attribution cannot contaminate `O(t, B_v)` — not even under
//!   proportional mixing, because mass only reaches `v` along time-respecting
//!   paths.
//!
//! The pruning pays off on sparse TINs where a vertex is reachable from a
//! small fraction of the network; the worst case degenerates to the plain
//! lazy replay.

use crate::error::Result;
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{vec_bytes, FootprintBreakdown};
use crate::origins::OriginSet;
use crate::policy::{PolicyConfig, SelectionPolicy};
use crate::quantity::Quantity;
use crate::tracker::{build_tracker, no_prov::NoProvTracker, ProvenanceTracker};

/// Statistics describing how much work a single backtraced query needed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Length of the full interaction log at query time.
    pub log_len: usize,
    /// Interactions inside the query's time horizon (`r.t ≤ t`).
    pub horizon_interactions: usize,
    /// Interactions actually replayed after pruning.
    pub replayed_interactions: usize,
    /// Vertices in the backward-reachable set `S`.
    pub reachable_vertices: usize,
}

impl QueryStats {
    /// Fraction of the horizon that was pruned away (0 when nothing was
    /// pruned, →1 when almost everything was irrelevant).
    pub fn pruning_ratio(&self) -> f64 {
        if self.horizon_interactions == 0 {
            return 0.0;
        }
        1.0 - self.replayed_interactions as f64 / self.horizon_interactions as f64
    }
}

/// Backtracing provenance: log interactions cheaply, answer queries by a
/// reachability-pruned replay.
#[derive(Debug)]
pub struct BacktraceIndex {
    default_policy: PolicyConfig,
    baseline: NoProvTracker,
    log: Vec<Interaction>,
}

impl BacktraceIndex {
    /// Create an index whose queries default to the given policy.
    pub fn new(num_vertices: usize, default_policy: PolicyConfig) -> Self {
        BacktraceIndex {
            default_policy,
            baseline: NoProvTracker::new(num_vertices),
            log: Vec::new(),
        }
    }

    /// Create an index defaulting to proportional (sparse) queries.
    pub fn proportional(num_vertices: usize) -> Self {
        Self::new(
            num_vertices,
            PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
        )
    }

    /// Create an index defaulting to FIFO queries.
    pub fn fifo(num_vertices: usize) -> Self {
        Self::new(num_vertices, PolicyConfig::Plain(SelectionPolicy::Fifo))
    }

    /// Number of logged interactions.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The vertices that can reach `v` through a time-respecting path using
    /// interactions with `r.t ≤ t` (always contains `v` itself). Returned as a
    /// membership bitmap indexed by vertex.
    pub fn backward_reachable(&self, v: VertexId, t: f64) -> Vec<bool> {
        let mut in_set = vec![false; self.baseline.num_vertices()];
        if v.index() < in_set.len() {
            in_set[v.index()] = true;
        }
        // Reverse scan: when an interaction's destination is already known to
        // reach v via later (or equal-time, later-in-log) interactions, its
        // source can too.
        for r in self.log.iter().rev() {
            if r.time.0 > t {
                continue;
            }
            if in_set[r.dst.index()] {
                in_set[r.src.index()] = true;
            }
        }
        in_set
    }

    /// Replay only the interactions relevant to `O(t, B_v)` under `policy`,
    /// returning the origin set together with the query statistics.
    pub fn origins_at_with_stats(
        &self,
        v: VertexId,
        t: f64,
        policy: &PolicyConfig,
    ) -> Result<(OriginSet, QueryStats)> {
        let in_set = self.backward_reachable(v, t);
        let mut tracker = build_tracker(policy, self.baseline.num_vertices())?;
        let mut stats = QueryStats {
            log_len: self.log.len(),
            reachable_vertices: in_set.iter().filter(|&&b| b).count(),
            ..QueryStats::default()
        };
        for r in &self.log {
            if r.time.0 > t {
                break;
            }
            stats.horizon_interactions += 1;
            if in_set[r.src.index()] || in_set[r.dst.index()] {
                tracker.process(r);
                stats.replayed_interactions += 1;
            }
        }
        Ok((tracker.origins(v), stats))
    }

    /// `O(t, B_v)` at an arbitrary past time `t` under an explicit policy.
    pub fn origins_at_with(&self, v: VertexId, t: f64, policy: &PolicyConfig) -> Result<OriginSet> {
        self.origins_at_with_stats(v, t, policy).map(|(o, _)| o)
    }

    /// `O(t, B_v)` at an arbitrary past time `t` under the default policy.
    pub fn origins_at(&self, v: VertexId, t: f64) -> Result<OriginSet> {
        self.origins_at_with(v, t, &self.default_policy.clone())
    }
}

// tin-lint: allow(tracker-conformance): the backtrace index replays the full log per query and is not shardable — it is never built by the sharded engine
impl ProvenanceTracker for BacktraceIndex {
    fn name(&self) -> &'static str {
        "Backtrace (pruned replay on demand)"
    }

    fn num_vertices(&self) -> usize {
        self.baseline.num_vertices()
    }

    fn process(&mut self, r: &Interaction) {
        self.baseline.process(r);
        self.log.push(*r);
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.baseline.buffered(v)
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        self.origins_at(v, f64::INFINITY)
            .expect("default policy was validated at construction")
    }

    fn footprint(&self) -> FootprintBreakdown {
        let base = self.baseline.footprint();
        FootprintBreakdown {
            entries_bytes: base.entries_bytes,
            paths_bytes: 0,
            index_bytes: vec_bytes(&self.log),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::lazy::LazyReplayProvenance;
    use crate::tracker::proportional_sparse::ProportionalSparseTracker;
    use crate::tracker::receipt_order::ReceiptOrderTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// A star workload where one branch never reaches the queried vertex: the
    /// pruning must skip the irrelevant branch and still be exact.
    fn star_with_dead_branch() -> (usize, Vec<Interaction>) {
        let rs = vec![
            Interaction::new(0u32, 1u32, 1.0, 10.0), // relevant: 0 -> 1
            Interaction::new(3u32, 4u32, 2.0, 50.0), // dead branch: 3 -> 4
            Interaction::new(1u32, 2u32, 3.0, 6.0),  // relevant: 1 -> 2
            Interaction::new(4u32, 3u32, 4.0, 20.0), // dead branch: 4 -> 3
            Interaction::new(2u32, 5u32, 5.0, 4.0),  // relevant: 2 -> 5
        ];
        (6, rs)
    }

    #[test]
    fn matches_full_lazy_replay_on_running_example() {
        let rs = paper_running_example();
        let mut backtrace = BacktraceIndex::proportional(3);
        let mut lazy = LazyReplayProvenance::proportional(3);
        let mut eager = ProportionalSparseTracker::new(3);
        for r in &rs {
            backtrace.process(r);
            lazy.process(r);
            eager.process(r);
        }
        for i in 0..3u32 {
            let pruned = backtrace.origins(v(i));
            assert!(pruned.approx_eq(&eager.origins(v(i))), "mismatch at v{i}");
            assert!(pruned.approx_eq(&lazy.origins(v(i))));
            assert!(qty_approx_eq(
                backtrace.buffered(v(i)),
                eager.buffered(v(i))
            ));
        }
        assert!(backtrace.check_all_invariants());
        assert_eq!(backtrace.log_len(), 6);
    }

    #[test]
    fn pruning_skips_unreachable_branches() {
        let (n, rs) = star_with_dead_branch();
        let mut backtrace = BacktraceIndex::fifo(n);
        backtrace.process_all(&rs);
        let (origins, stats) = backtrace
            .origins_at_with_stats(
                v(5),
                f64::INFINITY,
                &PolicyConfig::Plain(SelectionPolicy::Fifo),
            )
            .unwrap();
        // Provenance is exact …
        let mut exact = ReceiptOrderTracker::fifo(n);
        exact.process_all(&rs);
        assert!(origins.approx_eq(&exact.origins(v(5))));
        // … and the dead branch (vertices 3, 4) was pruned away.
        assert_eq!(stats.log_len, 5);
        assert_eq!(stats.horizon_interactions, 5);
        assert_eq!(stats.replayed_interactions, 3);
        assert_eq!(stats.reachable_vertices, 4); // {0, 1, 2, 5}
        assert!(stats.pruning_ratio() > 0.0);
    }

    #[test]
    fn reachability_respects_time_ordering() {
        // 0 -> 1 happens *after* 1 -> 2, so quantity from 0 can never reach 2.
        let rs = vec![
            Interaction::new(1u32, 2u32, 1.0, 5.0),
            Interaction::new(0u32, 1u32, 2.0, 5.0),
        ];
        let mut backtrace = BacktraceIndex::fifo(3);
        backtrace.process_all(&rs);
        let reach = backtrace.backward_reachable(v(2), f64::INFINITY);
        assert_eq!(reach, vec![false, true, true]);
        // Query at a horizon before the second interaction: same answer.
        let reach = backtrace.backward_reachable(v(2), 1.5);
        assert_eq!(reach, vec![false, true, true]);
        // The origin set at v2 only knows about v1.
        let origins = backtrace.origins_at(v(2), f64::INFINITY).unwrap();
        assert_eq!(origins.len(), 1);
        assert!(qty_approx_eq(origins.quantity_from_vertex(v(1)), 5.0));
    }

    #[test]
    fn time_travel_matches_prefix_replay() {
        let rs = paper_running_example();
        let mut backtrace = BacktraceIndex::proportional(3);
        backtrace.process_all(&rs);
        let mut eager_prefix = ProportionalSparseTracker::new(3);
        eager_prefix.process_all(&rs[..3]);
        for i in 0..3u32 {
            let pruned = backtrace.origins_at(v(i), 4.0).unwrap();
            assert!(
                pruned.approx_eq(&eager_prefix.origins(v(i))),
                "mismatch at v{i}"
            );
        }
    }

    #[test]
    fn pruned_replay_is_exact_under_every_policy() {
        let (n, rs) = star_with_dead_branch();
        let mut backtrace = BacktraceIndex::fifo(n);
        backtrace.process_all(&rs);
        for policy in SelectionPolicy::all() {
            if policy == SelectionPolicy::NoProvenance {
                continue;
            }
            let config = PolicyConfig::Plain(policy);
            let mut exact = build_tracker(&config, n).unwrap();
            exact.process_all(&rs);
            for i in 0..n as u32 {
                let pruned = backtrace
                    .origins_at_with(v(i), f64::INFINITY, &config)
                    .unwrap();
                assert!(
                    pruned.approx_eq(&exact.origins(v(i))),
                    "policy {policy}, vertex v{i}"
                );
            }
        }
    }

    #[test]
    fn stats_and_footprint() {
        let mut backtrace = BacktraceIndex::proportional(3);
        backtrace.process_all(&paper_running_example());
        let (_, stats) = backtrace
            .origins_at_with_stats(
                v(0),
                f64::INFINITY,
                &PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
            )
            .unwrap();
        assert_eq!(stats.log_len, 6);
        assert!(stats.replayed_interactions <= stats.horizon_interactions);
        assert!(stats.reachable_vertices >= 1);
        assert!(stats.pruning_ratio() >= 0.0);
        assert_eq!(QueryStats::default().pruning_ratio(), 0.0);
        let fp = backtrace.footprint();
        assert!(fp.index_bytes >= 6 * std::mem::size_of::<Interaction>());
        assert_eq!(fp.paths_bytes, 0);
        assert_eq!(backtrace.name(), "Backtrace (pruned replay on demand)");
    }

    #[test]
    fn invalid_query_policy_is_an_error() {
        let mut backtrace = BacktraceIndex::proportional(3);
        backtrace.process_all(&paper_running_example());
        let bad = PolicyConfig::Selective { tracked: vec![] };
        assert!(backtrace.origins_at_with(v(0), 10.0, &bad).is_err());
    }

    #[test]
    fn empty_log_queries_are_empty() {
        let backtrace = BacktraceIndex::fifo(4);
        assert!(backtrace.origins_at(v(2), 100.0).unwrap().is_empty());
        let reach = backtrace.backward_reachable(v(2), 100.0);
        assert_eq!(reach.iter().filter(|&&b| b).count(), 1);
    }
}
