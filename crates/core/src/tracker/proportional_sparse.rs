//! Proportional selection with sparse (ordered-list) provenance vectors
//! (Section 4.3, "Sparse vector representations").
//!
//! Semantically identical to [`super::proportional_dense`], but each vector
//! `p_v` is stored as an ordered list of `(origin, quantity)` pairs with only
//! the non-zero components. Space drops from `O(|V|²)` to `O(|V|·ℓ)` where ℓ
//! is the average list length, and each interaction costs `O(ℓ)` list-merge
//! work — which, as Figure 6 of the paper shows, still grows superlinearly
//! over long streams because the lists keep getting longer.
//!
//! Since PR 2 the tracker stores [`ProvenanceVec`]s: merges happen in
//! place on the destination lists (no per-interaction allocation), full
//! relays into empty vertices are O(1) buffer swaps, and — under
//! [`ProportionalSparseTracker::adaptive`] — a vector whose list density
//! crosses the configured threshold promotes itself to a dense SIMD vector
//! (the runtime version of the paper's dense-vs-sparse tradeoff).

use crate::adaptive_vec::{AdaptiveParams, ProvenanceVec};
use crate::error::Result;
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint, SpikeMonitor};
use crate::origins::OriginSet;
use crate::quantity::{qty_clamp_non_negative, qty_ge, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the provenance vector (its
/// packed SoA buffers move wholesale, sparse or dense) plus the scalar total.
pub struct TakenState {
    vec: ProvenanceVec,
    total: Quantity,
}

/// Proportional provenance with sparse list representations (optionally
/// adaptive, see [`Self::adaptive`]).
#[derive(Clone, Debug)]
pub struct ProportionalSparseTracker {
    vectors: Vec<ProvenanceVec>,
    totals: Vec<Quantity>,
    params: AdaptiveParams,
    processed: usize,
    monitor: Option<SpikeMonitor>,
}

impl ProportionalSparseTracker {
    /// Create a tracker for `num_vertices` vertices whose vectors stay
    /// sparse forever (the paper's plain sparse representation).
    pub fn new(num_vertices: usize) -> Self {
        Self::with_params(num_vertices, AdaptiveParams::sparse_only())
    }

    /// Create a tracker whose vectors promote to dense SIMD vectors once
    /// their list length reaches `dense_threshold · num_vertices` (see
    /// [`crate::adaptive_vec`]).
    ///
    /// # Errors
    /// Returns [`crate::TinError::InvalidConfig`] unless
    /// `0 < dense_threshold ≤ 1`.
    pub fn adaptive(num_vertices: usize, dense_threshold: f64) -> Result<Self> {
        Ok(Self::with_params(
            num_vertices,
            AdaptiveParams::new(num_vertices, dense_threshold)?,
        ))
    }

    /// Create a tracker with explicit adaptivity parameters.
    pub fn with_params(num_vertices: usize, params: AdaptiveParams) -> Self {
        ProportionalSparseTracker {
            vectors: (0..num_vertices).map(|_| ProvenanceVec::new()).collect(),
            totals: vec![0.0; num_vertices],
            params,
            processed: 0,
            monitor: None,
        }
    }

    /// Direct read access to the provenance vector of `v`.
    pub fn vector(&self, v: VertexId) -> &ProvenanceVec {
        &self.vectors[v.index()]
    }

    /// Average provenance-list length ℓ over vertices with non-empty lists.
    pub fn average_list_length(&self) -> f64 {
        let mut count = 0usize;
        let mut sum = 0usize;
        for p in &self.vectors {
            let l = p.len();
            if l > 0 {
                count += 1;
                sum += l;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Total number of provenance entries across all lists.
    pub fn total_entries(&self) -> usize {
        self.vectors.iter().map(|p| p.len()).sum()
    }

    /// Number of vectors currently using the dense representation (always 0
    /// for a [`Self::new`] tracker).
    pub fn dense_vector_count(&self) -> usize {
        self.vectors.iter().filter(|p| p.is_dense()).count()
    }
}

impl ProvenanceTracker for ProportionalSparseTracker {
    fn name(&self) -> &'static str {
        if self.params.promotion_enabled() {
            "Proportional (adaptive)"
        } else {
            "Proportional (sparse)"
        }
    }

    fn num_vertices(&self) -> usize {
        self.vectors.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        let (src_vec, dst_vec) = split_src_dst(&mut self.vectors, s, d);
        let fp_before = if self.monitor.is_some() {
            src_vec.footprint_bytes() + dst_vec.footprint_bytes()
        } else {
            0
        };

        let src_total = self.totals[s];
        if qty_ge(r.qty, src_total) {
            // Full relay plus newborn residue.
            dst_vec.take_all_from(src_vec);
            let newborn = qty_clamp_non_negative(r.qty - src_total);
            if newborn > 0.0 {
                dst_vec.add_vertex(r.src, newborn);
            }
            self.totals[d] += r.qty;
            self.totals[s] = 0.0;
        } else {
            // Proportional split via list merges.
            let factor = r.qty / src_total;
            dst_vec.transfer_from(src_vec, factor);
            self.totals[d] += r.qty;
            self.totals[s] = qty_clamp_non_negative(src_total - r.qty);
        }
        dst_vec.maybe_promote(&self.params);
        if let Some(monitor) = &mut self.monitor {
            let fp_after = src_vec.footprint_bytes() + dst_vec.footprint_bytes();
            monitor.apply_delta(fp_after as isize - fp_before as isize);
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.totals[v.index()]
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        self.vectors[v.index()].to_origin_set()
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.vectors.iter().map(|p| p.footprint_bytes()).sum(),
            paths_bytes: 0,
            index_bytes: crate::memory::vec_bytes(&self.totals)
                + std::mem::size_of::<ProvenanceVec>() * self.vectors.capacity(),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
    crate::impl_spike_monitor_hooks!();
}

impl MigratableTracker for ProportionalSparseTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            vec: std::mem::take(&mut self.vectors[i]),
            total: std::mem::take(&mut self.totals[i]),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        let i = v.index();
        self.vectors[i] = taken.vec;
        self.totals[i] = taken.total;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.vec.encode_into(out);
        crate::codec::put_f64(out, taken.total);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            vec: ProvenanceVec::decode_from(r)?,
            total: r.f64()?,
        })
    }

    // Migrating state carries its footprint with it: without the delta a
    // borrowing shard's estimate inflates by every borrowed growth while
    // the owner's misses it, so spikes fire on the wrong replica.
    fn taken_footprint(taken: &TakenState) -> usize {
        taken.vec.footprint_bytes()
    }

    fn monitor_store(&mut self) -> Option<&mut Option<SpikeMonitor>> {
        Some(&mut self.monitor)
    }

    fn footprint_estimate(&self) -> usize {
        self.vectors.iter().map(|p| p.footprint_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::proportional_dense::ProportionalDenseTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// The sparse tracker must produce exactly the same provenance as the
    /// dense tracker on the running example (they implement the same policy).
    #[test]
    fn matches_dense_on_running_example() {
        let mut sparse = ProportionalSparseTracker::new(3);
        let mut dense = ProportionalDenseTracker::new(3);
        for r in paper_running_example() {
            sparse.process(&r);
            dense.process(&r);
            for i in 0..3u32 {
                assert!(qty_approx_eq(sparse.buffered(v(i)), dense.buffered(v(i))));
                assert!(
                    sparse.origins(v(i)).approx_eq(&dense.origins(v(i))),
                    "origin mismatch at v{i} after {r:?}: {:?} vs {:?}",
                    sparse.origins(v(i)),
                    dense.origins(v(i))
                );
            }
        }
    }

    /// The adaptive tracker implements the same policy again — and with an
    /// aggressive threshold it must actually exercise the dense
    /// representation on the running example.
    #[test]
    fn adaptive_matches_sparse_and_promotes() {
        let mut adaptive = ProportionalSparseTracker::adaptive(3, 0.1).unwrap();
        let mut sparse = ProportionalSparseTracker::new(3);
        for r in paper_running_example() {
            adaptive.process(&r);
            sparse.process(&r);
            for i in 0..3u32 {
                assert!(qty_approx_eq(
                    adaptive.buffered(v(i)),
                    sparse.buffered(v(i))
                ));
                assert!(
                    adaptive.origins(v(i)).approx_eq(&sparse.origins(v(i))),
                    "origin mismatch at v{i} after {r:?}"
                );
            }
        }
        assert_eq!(adaptive.name(), "Proportional (adaptive)");
        assert!(adaptive.check_all_invariants());
        // Threshold 0.1 over 3 vertices promotes at the minimum list length
        // (4), which the running example never reaches — feed a mixing hub.
        let mut hub = ProportionalSparseTracker::adaptive(8, 0.1).unwrap();
        for i in 1..8u32 {
            hub.process(&Interaction::new(i, 0u32, i as f64, 1.0));
        }
        assert!(hub.dense_vector_count() > 0, "hub vector must promote");
        assert!(hub.check_all_invariants());
        // Invalid thresholds are rejected.
        assert!(ProportionalSparseTracker::adaptive(8, 0.0).is_err());
        assert!(ProportionalSparseTracker::adaptive(8, 2.0).is_err());
    }

    /// Final vector values of Table 5, read through the sparse representation.
    #[test]
    fn table5_final_state() {
        let mut t = ProportionalSparseTracker::new(3);
        t.process_all(&paper_running_example());
        let o0 = t.origins(v(0));
        assert!((o0.quantity_from_vertex(v(1)) - 2.03).abs() < 0.01);
        assert!((o0.quantity_from_vertex(v(2)) - 0.97).abs() < 0.01);
        let o2 = t.origins(v(2));
        assert!((o2.quantity_from_vertex(v(1)) - 3.31).abs() < 0.01);
        assert!((o2.quantity_from_vertex(v(2)) - 0.69).abs() < 0.01);
        assert!(t.check_all_invariants());
    }

    /// Sparse representation example from Section 4.3: after the first
    /// interaction, p_v2 is stored as the single pair (v1, 3).
    #[test]
    fn sparse_representation_is_compact() {
        let rs = paper_running_example();
        let mut t = ProportionalSparseTracker::new(3);
        t.process(&rs[0]);
        assert_eq!(t.vector(v(2)).len(), 1);
        assert!(qty_approx_eq(t.vector(v(2)).get_vertex(v(1)), 3.0));
        // Dense representation would store 3 slots; sparse stores 1 entry.
        assert_eq!(t.total_entries(), 1);
        assert_eq!(t.dense_vector_count(), 0);
    }

    #[test]
    fn list_lengths_grow_with_mixing() {
        let mut t = ProportionalSparseTracker::new(4);
        // Three distinct generators feed vertex 3, so its list has 3 entries.
        t.process(&Interaction::new(0u32, 3u32, 1.0, 1.0));
        t.process(&Interaction::new(1u32, 3u32, 2.0, 1.0));
        t.process(&Interaction::new(2u32, 3u32, 3.0, 1.0));
        assert_eq!(t.vector(v(3)).len(), 3);
        assert!(qty_approx_eq(t.average_list_length(), 3.0));
        // A partial transfer to vertex 0 propagates all three origins.
        t.process(&Interaction::new(3u32, 0u32, 4.0, 1.5));
        assert_eq!(t.vector(v(0)).len(), 3);
        assert_eq!(t.vector(v(3)).len(), 3);
        assert!(t.check_all_invariants());
    }

    #[test]
    fn average_list_length_empty_tracker() {
        let t = ProportionalSparseTracker::new(5);
        assert_eq!(t.average_list_length(), 0.0);
        assert_eq!(t.total_entries(), 0);
    }

    #[test]
    fn totals_match_noprov() {
        use crate::tracker::no_prov::NoProvTracker;
        let mut a = ProportionalSparseTracker::new(3);
        let mut b = NoProvTracker::new(3);
        for r in paper_running_example() {
            a.process(&r);
            b.process(&r);
        }
        for i in 0..3u32 {
            assert!(qty_approx_eq(a.buffered(v(i)), b.buffered(v(i))));
        }
    }

    #[test]
    fn footprint_tracks_entries() {
        let mut t = ProportionalSparseTracker::new(3);
        let before = t.footprint().entries_bytes;
        t.process_all(&paper_running_example());
        assert!(t.footprint().entries_bytes > before);
        assert_eq!(t.footprint().paths_bytes, 0);
    }

    #[test]
    fn name() {
        assert_eq!(
            ProportionalSparseTracker::new(1).name(),
            "Proportional (sparse)"
        );
    }
}
