//! Time-based windowed proportional provenance.
//!
//! Section 5.3.1 motivates the windowing approach as limiting "how far in the
//! past we are interested in tracking provenance", but the paper's mechanism
//! counts *interactions*. In many TINs the natural unit of "the past" is
//! time, not interaction count — a day of taxi trips, a settlement period in
//! a financial network, a monitoring interval in a traffic network — and
//! interaction rates vary wildly over a day, so a count-based window maps to
//! a wobbling time horizon. This tracker implements the same odd/even
//! double-vector scheme, but resets fire when the *timestamp* of the current
//! interaction crosses a multiple of the window duration `D`.
//!
//! The guarantee becomes temporal: at any moment, the active vector was last
//! reset between `D` and `2·D` time units ago, so the provenance of any
//! quantity born within the last `D` time units is exact; older quantities
//! may be attributed to the artificial vertex α.

use crate::adaptive_vec::ProvenanceVec;
use crate::error::{Result, TinError};
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint, SpikeMonitor};
use crate::origins::OriginSet;
use crate::quantity::{qty_clamp_non_negative, qty_ge, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: both vector families plus
/// the scalar total.
pub struct TakenState {
    odd: ProvenanceVec,
    even: ProvenanceVec,
    total: Quantity,
}

/// Proportional provenance limited to a sliding window of `D`–`2·D` time
/// units (compare [`super::windowed::WindowedTracker`], which counts
/// interactions instead).
#[derive(Clone, Debug)]
pub struct TimeWindowedTracker {
    duration: f64,
    odd: Vec<ProvenanceVec>,
    even: Vec<ProvenanceVec>,
    totals: Vec<Quantity>,
    processed: usize,
    resets: usize,
    /// Index of the last window boundary crossed: `floor(t / duration)`.
    epoch: u64,
    monitor: Option<SpikeMonitor>,
}

impl TimeWindowedTracker {
    /// Create a tracker with window duration `duration` (in the same time
    /// unit as the interaction timestamps).
    ///
    /// # Errors
    /// Returns an error if `duration` is not strictly positive and finite.
    pub fn new(num_vertices: usize, duration: f64) -> Result<Self> {
        if !(duration.is_finite() && duration > 0.0) {
            return Err(TinError::InvalidConfig(format!(
                "time window duration must be positive and finite, got {duration}"
            )));
        }
        Ok(TimeWindowedTracker {
            duration,
            odd: (0..num_vertices).map(|_| ProvenanceVec::new()).collect(),
            even: (0..num_vertices).map(|_| ProvenanceVec::new()).collect(),
            totals: vec![0.0; num_vertices],
            processed: 0,
            resets: 0,
            epoch: 0,
            monitor: None,
        })
    }

    /// The window duration D.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of resets performed so far.
    pub fn resets(&self) -> usize {
        self.resets
    }

    /// Provenance generated after this time is guaranteed to be exact (the
    /// start of the window that the active vector covers).
    pub fn guaranteed_since(&self) -> f64 {
        // The active vector was last reset at the start of the previous epoch
        // (or at time 0 when no reset has fired yet).
        self.epoch.saturating_sub(1) as f64 * self.duration
    }

    /// Fire every window boundary crossed up to timestamp `now` (the reset
    /// loop of `process`, shared with the shard-replica epoch sync).
    fn fire_resets_until(&mut self, now: f64) {
        let epoch_now = (now / self.duration).floor() as u64;
        let fired = self.epoch < epoch_now;
        while self.epoch < epoch_now {
            self.epoch += 1;
            self.resets += 1;
            let targets = if self.resets % 2 == 1 {
                &mut self.odd
            } else {
                &mut self.even
            };
            for (v, vec) in targets.iter_mut().enumerate() {
                vec.reset_to_unknown(self.totals[v]);
            }
        }
        if let Some(monitor) = &mut self.monitor {
            if fired {
                // A reset rewrites every vector of one family; re-basing the
                // estimate costs O(|V|), same as the reset itself.
                let estimate: usize = self
                    .odd
                    .iter()
                    .chain(self.even.iter())
                    .map(|p| p.footprint_bytes())
                    .sum();
                monitor.set_estimate(estimate);
            }
        }
    }

    fn apply(vectors: &mut [ProvenanceVec], totals: &[Quantity], r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        let (src_vec, dst_vec) = split_src_dst(vectors, s, d);
        let src_total = totals[s];
        if qty_ge(r.qty, src_total) {
            dst_vec.take_all_from(src_vec);
            let newborn = qty_clamp_non_negative(r.qty - src_total);
            if newborn > 0.0 {
                dst_vec.add_vertex(r.src, newborn);
            }
        } else {
            let factor = r.qty / src_total;
            dst_vec.transfer_from(src_vec, factor);
        }
    }
}

impl ProvenanceTracker for TimeWindowedTracker {
    fn name(&self) -> &'static str {
        "Time-windowed proportional"
    }

    fn num_vertices(&self) -> usize {
        self.totals.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");

        // Fire any window boundaries passed since the previous interaction
        // *before* applying it, so the new quantities belong to the new epoch
        // (and before measuring the monitored footprint delta, so the reset's
        // wholesale re-estimate is not double-counted).
        self.fire_resets_until(r.time.value());
        let fp_before = if self.monitor.is_some() {
            self.odd[s].footprint_bytes()
                + self.odd[d].footprint_bytes()
                + self.even[s].footprint_bytes()
                + self.even[d].footprint_bytes()
        } else {
            0
        };

        Self::apply(&mut self.odd, &self.totals, r);
        Self::apply(&mut self.even, &self.totals, r);

        let src_total = self.totals[s];
        if qty_ge(r.qty, src_total) {
            self.totals[s] = 0.0;
        } else {
            self.totals[s] = qty_clamp_non_negative(src_total - r.qty);
        }
        self.totals[d] += r.qty;
        self.processed += 1;
        if let Some(monitor) = &mut self.monitor {
            let fp_after = self.odd[s].footprint_bytes()
                + self.odd[d].footprint_bytes()
                + self.even[s].footprint_bytes()
                + self.even[d].footprint_bytes();
            monitor.apply_delta(fp_after as isize - fp_before as isize);
        }
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.totals[v.index()]
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        // Read whichever family was least recently reset (same parity rule as
        // the interaction-count window).
        let vec = if self.resets % 2 == 1 {
            &self.even[v.index()]
        } else {
            &self.odd[v.index()]
        };
        vec.to_origin_set()
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self
                .odd
                .iter()
                .chain(self.even.iter())
                .map(|p| p.footprint_bytes())
                .sum(),
            paths_bytes: 0,
            index_bytes: crate::memory::vec_bytes(&self.totals)
                + std::mem::size_of::<ProvenanceVec>()
                    * (self.odd.capacity() + self.even.capacity()),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();

    fn sync_epoch(&mut self, _processed: usize, now: f64) {
        // The reset schedule is keyed to the stream timestamps; a replica
        // that saw no interaction of the new epoch yet fires the pending
        // boundary resets here. Replicas that already crossed the boundary
        // inside `process` are untouched (`epoch` is monotone).
        self.fire_resets_until(now);
    }

    crate::impl_spike_monitor_hooks!();
}

impl MigratableTracker for TimeWindowedTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            odd: std::mem::take(&mut self.odd[i]),
            even: std::mem::take(&mut self.even[i]),
            total: std::mem::take(&mut self.totals[i]),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        let i = v.index();
        self.odd[i] = taken.odd;
        self.even[i] = taken.even;
        self.totals[i] = taken.total;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.odd.encode_into(out);
        taken.even.encode_into(out);
        crate::codec::put_f64(out, taken.total);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            odd: ProvenanceVec::decode_from(r)?,
            even: ProvenanceVec::decode_from(r)?,
            total: r.f64()?,
        })
    }

    // Migrating state carries its footprint with it (see
    // `ProportionalSparseTracker`).
    fn taken_footprint(taken: &TakenState) -> usize {
        taken.odd.footprint_bytes() + taken.even.footprint_bytes()
    }

    fn monitor_store(&mut self) -> Option<&mut Option<SpikeMonitor>> {
        Some(&mut self.monitor)
    }

    fn footprint_estimate(&self) -> usize {
        self.odd
            .iter()
            .chain(self.even.iter())
            .map(|p| p.footprint_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Origin;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::no_prov::NoProvTracker;
    use crate::tracker::proportional_sparse::ProportionalSparseTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn rejects_non_positive_or_non_finite_durations() {
        for duration in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(TimeWindowedTracker::new(3, duration).is_err(), "{duration}");
        }
    }

    #[test]
    fn huge_duration_matches_unwindowed_proportional() {
        let mut windowed = TimeWindowedTracker::new(3, 1e9).unwrap();
        let mut exact = ProportionalSparseTracker::new(3);
        for r in paper_running_example() {
            windowed.process(&r);
            exact.process(&r);
        }
        assert_eq!(windowed.resets(), 0);
        for i in 0..3u32 {
            assert!(qty_approx_eq(windowed.buffered(v(i)), exact.buffered(v(i))));
            assert!(windowed.origins(v(i)).approx_eq(&exact.origins(v(i))));
        }
    }

    #[test]
    fn totals_match_the_baseline_regardless_of_resets() {
        let mut windowed = TimeWindowedTracker::new(3, 2.0).unwrap();
        let mut baseline = NoProvTracker::new(3);
        for r in paper_running_example() {
            windowed.process(&r);
            baseline.process(&r);
            for i in 0..3u32 {
                assert!(qty_approx_eq(
                    windowed.buffered(v(i)),
                    baseline.buffered(v(i))
                ));
            }
            assert!(windowed.check_all_invariants());
        }
    }

    #[test]
    fn resets_follow_the_timestamps_not_the_interaction_count() {
        // Running-example timestamps are 1,3,4,5,7,8. With D = 3 the epochs
        // are 0,1,1,1,2,2, so exactly two boundary crossings fire.
        let mut t = TimeWindowedTracker::new(3, 3.0).unwrap();
        t.process_all(&paper_running_example());
        assert_eq!(t.resets(), 2);
        assert!((t.duration() - 3.0).abs() < 1e-12);
        // A burst of interactions at the same timestamp never triggers extra
        // resets, unlike the count-based window.
        let mut burst = TimeWindowedTracker::new(3, 3.0).unwrap();
        for i in 0..10 {
            burst.process(&Interaction::new(0u32, 1 + (i % 2) as u32, 1.0, 1.0));
        }
        assert_eq!(burst.resets(), 0);
    }

    #[test]
    fn old_provenance_is_forgotten_recent_provenance_is_exact() {
        // D = 3: the active (odd) vector was reset at t = 3, so quantities
        // born at t = 1 lose their origin while anything born later keeps it.
        let mut t = TimeWindowedTracker::new(3, 3.0).unwrap();
        t.process_all(&paper_running_example());
        // Something was attributed to α after the resets...
        let unknown: f64 = (0..3u32)
            .map(|i| t.origins(v(i)).quantity_from(Origin::Unknown))
            .sum();
        assert!(unknown > 0.0);
        // ...but the 4 units born at v1 at t = 5 (within the guaranteed
        // horizon of the active vector) keep their concrete origin.
        assert!(t.origins(v(2)).quantity_from_vertex(v(1)) > 0.0);
        assert!(t.check_all_invariants());
    }

    #[test]
    fn guaranteed_since_tracks_the_window_start() {
        let mut t = TimeWindowedTracker::new(3, 2.0).unwrap();
        assert_eq!(t.guaranteed_since(), 0.0);
        for r in paper_running_example() {
            t.process(&r);
            // The guarantee never lags the current time by more than 2·D.
            assert!(r.time.value() - t.guaranteed_since() <= 2.0 * t.duration() + 1e-12);
        }
    }

    #[test]
    fn memory_is_bounded_by_frequent_resets() {
        let mut small = TimeWindowedTracker::new(3, 1.0).unwrap();
        let mut large = TimeWindowedTracker::new(3, 1e6).unwrap();
        for r in paper_running_example() {
            small.process(&r);
            large.process(&r);
        }
        assert!(small.footprint().entries_bytes <= large.footprint().entries_bytes);
        assert_eq!(small.name(), "Time-windowed proportional");
    }
}
