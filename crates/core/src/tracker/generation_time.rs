//! Generation-time selection policies (Section 4.1, Algorithm 2).
//!
//! Buffers hold `(origin, birth-time, quantity)` triples organised in a heap
//! keyed by birth time. The *least-recently-born* policy relays the oldest
//! quantities first (min-heap); the *most-recently-born* policy relays the
//! newest quantities first (max-heap). When the buffered quantity does not
//! cover the interaction, the residue is newborn at the source, stamped with
//! the interaction's timestamp.

use crate::buffer::heap_buffer::{HeapBuffer, HeapKind};
use crate::buffer::Triple;
use crate::ids::{Timestamp, VertexId};
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint};
use crate::origins::OriginSet;
use crate::quantity::{qty_is_zero, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the whole generation-time
/// heap (its backing array — and therefore its exact tie-breaking layout —
/// moves wholesale).
pub struct TakenState {
    buf: HeapBuffer,
}

/// Algorithm 2: provenance tracking under generation-time selection.
#[derive(Clone, Debug)]
pub struct GenerationTimeTracker {
    kind: HeapKind,
    buffers: Vec<HeapBuffer>,
    processed: usize,
}

impl GenerationTimeTracker {
    /// Least-recently-born selection: the oldest quantities are relayed first.
    pub fn least_recently_born(num_vertices: usize) -> Self {
        Self::with_kind(num_vertices, HeapKind::LeastRecentlyBorn)
    }

    /// Most-recently-born selection: the newest quantities are relayed first.
    pub fn most_recently_born(num_vertices: usize) -> Self {
        Self::with_kind(num_vertices, HeapKind::MostRecentlyBorn)
    }

    /// Build a tracker with an explicit heap kind.
    pub fn with_kind(num_vertices: usize, kind: HeapKind) -> Self {
        GenerationTimeTracker {
            kind,
            buffers: (0..num_vertices).map(|_| HeapBuffer::new(kind)).collect(),
            processed: 0,
        }
    }

    /// The selection kind of this tracker.
    pub fn kind(&self) -> HeapKind {
        self.kind
    }

    /// The raw triples currently buffered at `v`, in unspecified order.
    /// (Tests reproducing Table 3 compare these as multisets.)
    pub fn triples(&self, v: VertexId) -> Vec<Triple> {
        self.buffers[v.index()].iter().copied().collect()
    }

    /// Total number of triples stored across all buffers (the O(|R|) space
    /// term of the complexity analysis).
    pub fn total_triples(&self) -> usize {
        self.buffers.iter().map(|b| b.len()).sum()
    }

    /// Provenance grouped by `(origin, birth time)` at vertex `v`:
    /// `((origin, birth), quantity)` pairs summed over buffered triples.
    pub fn origins_with_birth(&self, v: VertexId) -> Vec<((VertexId, Timestamp), Quantity)> {
        let mut agg: std::collections::BTreeMap<(u32, u64), (VertexId, Timestamp, Quantity)> =
            std::collections::BTreeMap::new();
        for t in self.buffers[v.index()].iter() {
            let key = (t.origin.raw(), t.birth.0.to_bits());
            agg.entry(key)
                .and_modify(|(_, _, q)| *q += t.qty)
                .or_insert((t.origin, t.birth, t.qty));
        }
        agg.into_values().map(|(o, b, q)| ((o, b), q)).collect()
    }
}

impl ProvenanceTracker for GenerationTimeTracker {
    fn name(&self) -> &'static str {
        match self.kind {
            HeapKind::LeastRecentlyBorn => "Least Recently Born",
            HeapKind::MostRecentlyBorn => "Most Recently Born",
        }
    }

    fn num_vertices(&self) -> usize {
        self.buffers.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");

        // Select up to r.q from the source buffer (Algorithm 2, lines 6–17).
        // The two buffers are distinct (no self-loops), so split the borrow.
        let (src_buf, dst_buf) = split_src_dst(&mut self.buffers, s, d);
        let taken = src_buf.take(r.qty, |triple| dst_buf.push(triple));

        // Newborn residue (Algorithm 2, lines 18–21).
        let residue = r.qty - taken;
        if !qty_is_zero(residue) {
            dst_buf.push(Triple {
                origin: r.src,
                birth: r.time,
                qty: residue,
            });
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.buffers[v.index()].total()
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        OriginSet::from_vertex_pairs(self.buffers[v.index()].iter().map(|t| (t.origin, t.qty)))
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.buffers.iter().map(|b| b.footprint_bytes()).sum(),
            paths_bytes: 0,
            index_bytes: std::mem::size_of::<HeapBuffer>() * self.buffers.capacity(),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
}

impl MigratableTracker for GenerationTimeTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            buf: std::mem::replace(&mut self.buffers[i], HeapBuffer::new(self.kind)),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        self.buffers[v.index()] = taken.buf;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.buf.encode_into(out);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            buf: HeapBuffer::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// Compare a buffer's triples against an expected multiset of
    /// (origin, birth, qty).
    fn assert_triples(t: &GenerationTimeTracker, vertex: u32, expected: &[(u32, f64, f64)]) {
        let mut got: Vec<(u32, f64, f64)> = t
            .triples(v(vertex))
            .iter()
            .map(|x| (x.origin.raw(), x.birth.0, x.qty))
            .collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut want = expected.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            got.len(),
            want.len(),
            "triples at v{vertex}: {got:?} vs {want:?}"
        );
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(
                g.0, w.0,
                "origin mismatch at v{vertex}: {got:?} vs {want:?}"
            );
            assert!(qty_approx_eq(g.1, w.1), "birth mismatch at v{vertex}");
            assert!(qty_approx_eq(g.2, w.2), "qty mismatch at v{vertex}");
        }
    }

    /// Reproduces Table 3 of the paper step by step (oldest-first / LRB).
    #[test]
    fn table3_least_recently_born() {
        let rs = paper_running_example();
        let mut t = GenerationTimeTracker::least_recently_born(3);

        t.process(&rs[0]);
        assert_triples(&t, 0, &[]);
        assert_triples(&t, 1, &[]);
        assert_triples(&t, 2, &[(1, 1.0, 3.0)]);

        t.process(&rs[1]);
        assert_triples(&t, 0, &[(1, 1.0, 3.0), (2, 3.0, 2.0)]);
        assert_triples(&t, 2, &[]);

        t.process(&rs[2]);
        assert_triples(&t, 0, &[(2, 3.0, 2.0)]);
        assert_triples(&t, 1, &[(1, 1.0, 3.0)]);

        t.process(&rs[3]);
        assert_triples(&t, 0, &[(2, 3.0, 2.0)]);
        assert_triples(&t, 1, &[]);
        assert_triples(&t, 2, &[(1, 1.0, 3.0), (1, 5.0, 4.0)]);

        t.process(&rs[4]);
        assert_triples(&t, 0, &[(2, 3.0, 2.0)]);
        assert_triples(&t, 1, &[(1, 1.0, 2.0)]);
        assert_triples(&t, 2, &[(1, 1.0, 1.0), (1, 5.0, 4.0)]);

        t.process(&rs[5]);
        assert_triples(&t, 0, &[(1, 1.0, 1.0), (2, 3.0, 2.0)]);
        assert_triples(&t, 1, &[(1, 1.0, 2.0)]);
        assert_triples(&t, 2, &[(1, 5.0, 4.0)]);

        assert!(t.check_all_invariants());
    }

    /// Buffer totals must agree with the provenance-free baseline (Table 2),
    /// whatever the selection policy.
    #[test]
    fn totals_match_noprov_for_both_kinds() {
        use crate::tracker::no_prov::NoProvTracker;
        for kind in [HeapKind::LeastRecentlyBorn, HeapKind::MostRecentlyBorn] {
            let mut a = GenerationTimeTracker::with_kind(3, kind);
            let mut b = NoProvTracker::new(3);
            for r in paper_running_example() {
                a.process(&r);
                b.process(&r);
                for i in 0..3 {
                    assert!(
                        qty_approx_eq(a.buffered(v(i)), b.buffered(v(i))),
                        "kind {kind:?} diverged from NoProv at v{i}"
                    );
                }
            }
        }
    }

    /// MRB differs from LRB: the transfers always pick the *newest* birth
    /// times first. Tracing the running example by hand under MRB:
    /// after interaction 3 (v0→v1, q=3) the most recent triple (2,3,2) moves
    /// whole and (1,1,3) is split; after interaction 5 (v2→v1, q=2) the
    /// time-5 triple is split instead of the time-1 triple.
    #[test]
    fn mrb_selects_newest_quantity() {
        let rs = paper_running_example();
        let mut t = GenerationTimeTracker::most_recently_born(3);
        for r in &rs[..3] {
            t.process(r);
        }
        assert_triples(&t, 0, &[(1, 1.0, 2.0)]);
        assert_triples(&t, 1, &[(2, 3.0, 2.0), (1, 1.0, 1.0)]);

        for r in &rs[3..5] {
            t.process(r);
        }
        // v2's buffer before interaction 5 held (2,3,2), (1,1,1) and (1,5,4);
        // the transfer of 2 units must come from the time-5 triple under MRB.
        assert_triples(&t, 1, &[(1, 5.0, 2.0)]);
        assert_triples(&t, 2, &[(2, 3.0, 2.0), (1, 1.0, 1.0), (1, 5.0, 2.0)]);
    }

    #[test]
    fn origins_aggregate_across_births() {
        let rs = paper_running_example();
        let mut t = GenerationTimeTracker::least_recently_born(3);
        t.process_all(&rs[..4]);
        // v2 holds (1,1,3) and (1,5,4): both from origin v1.
        let o = t.origins(v(2));
        assert_eq!(o.len(), 1);
        assert!(qty_approx_eq(o.quantity_from_vertex(v(1)), 7.0));
        // origins_with_birth keeps the two birth times separate.
        let with_birth = t.origins_with_birth(v(2));
        assert_eq!(with_birth.len(), 2);
        let total: f64 = with_birth.iter().map(|(_, q)| q).sum();
        assert!(qty_approx_eq(total, 7.0));
    }

    #[test]
    fn newborn_residue_has_interaction_timestamp() {
        let mut t = GenerationTimeTracker::least_recently_born(2);
        t.process(&Interaction::new(0u32, 1u32, 42.0, 5.0));
        let triples = t.triples(v(1));
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].origin, v(0));
        assert_eq!(triples[0].birth, Timestamp::new(42.0));
        assert_eq!(triples[0].qty, 5.0);
    }

    #[test]
    fn exact_transfer_does_not_generate() {
        let mut t = GenerationTimeTracker::least_recently_born(3);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 4.0));
        t.process(&Interaction::new(1u32, 2u32, 2.0, 4.0));
        // All 4 units at v2 originate from v0 (relay, no newborn at v1).
        let o = t.origins(v(2));
        assert_eq!(o.len(), 1);
        assert!(qty_approx_eq(o.quantity_from_vertex(v(0)), 4.0));
    }

    #[test]
    fn triple_count_grows_at_most_one_per_interaction() {
        // Space complexity argument of Section 4.1: each interaction adds at
        // most one triple to the global population.
        let rs = paper_running_example();
        let mut t = GenerationTimeTracker::least_recently_born(3);
        let mut prev = 0usize;
        for (i, r) in rs.iter().enumerate() {
            t.process(r);
            let now = t.total_triples();
            assert!(
                now <= prev + 1,
                "interaction {i} grew triples from {prev} to {now}"
            );
            prev = now;
        }
    }

    #[test]
    fn footprint_reports_entry_bytes() {
        let mut t = GenerationTimeTracker::least_recently_born(3);
        t.process_all(&paper_running_example());
        let fp = t.footprint();
        assert!(fp.entries_bytes > 0);
        assert_eq!(fp.paths_bytes, 0);
        assert!(fp.total() >= fp.entries_bytes);
    }

    #[test]
    fn names() {
        assert_eq!(
            GenerationTimeTracker::least_recently_born(1).name(),
            "Least Recently Born"
        );
        assert_eq!(
            GenerationTimeTracker::most_recently_born(1).name(),
            "Most Recently Born"
        );
    }
}
