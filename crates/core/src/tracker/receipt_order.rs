//! Receipt-order selection policies: FIFO and LIFO (Section 4.2).
//!
//! Buffers hold `(origin, quantity)` pairs in the order they were received.
//! The algorithm is Algorithm 2 with the heap replaced by a queue (FIFO) or a
//! stack (LIFO), which drops the per-access `O(log)` factor and the need to
//! store birth times.

use crate::buffer::queue_buffer::{Discipline, QueueBuffer};
use crate::buffer::Pair;
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint};
use crate::origins::OriginSet;
use crate::quantity::{qty_is_zero, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the whole receipt-order
/// queue (pairs in receipt order, ring buffer moved wholesale).
pub struct TakenState {
    buf: QueueBuffer,
}

/// Provenance tracking under receipt-order selection (FIFO or LIFO buffers).
#[derive(Clone, Debug)]
pub struct ReceiptOrderTracker {
    discipline: Discipline,
    buffers: Vec<QueueBuffer>,
    processed: usize,
}

impl ReceiptOrderTracker {
    /// FIFO selection: relay the least recently received quantities first
    /// (pipelines, traffic networks).
    pub fn fifo(num_vertices: usize) -> Self {
        Self::with_discipline(num_vertices, Discipline::Fifo)
    }

    /// LIFO selection: relay the most recently received quantities first
    /// (cash registers, wallets).
    pub fn lifo(num_vertices: usize) -> Self {
        Self::with_discipline(num_vertices, Discipline::Lifo)
    }

    /// Build a tracker with an explicit discipline.
    pub fn with_discipline(num_vertices: usize, discipline: Discipline) -> Self {
        ReceiptOrderTracker {
            discipline,
            buffers: (0..num_vertices)
                .map(|_| QueueBuffer::new(discipline))
                .collect(),
            processed: 0,
        }
    }

    /// The discipline of this tracker.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// The `(origin, quantity)` pairs buffered at `v`, in receipt order
    /// (the display order of Table 4).
    pub fn pairs(&self, v: VertexId) -> Vec<(VertexId, Quantity)> {
        self.buffers[v.index()].as_pairs()
    }

    /// Total number of pairs stored across all buffers.
    pub fn total_pairs(&self) -> usize {
        self.buffers.iter().map(|b| b.len()).sum()
    }
}

impl ProvenanceTracker for ReceiptOrderTracker {
    fn name(&self) -> &'static str {
        match self.discipline {
            Discipline::Fifo => "FIFO",
            Discipline::Lifo => "LIFO",
        }
    }

    fn num_vertices(&self) -> usize {
        self.buffers.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");

        let (src_buf, dst_buf) = split_src_dst(&mut self.buffers, s, d);
        // Transferred pairs are appended to the destination in selection
        // order (Section 4.2).
        let taken = src_buf.take(r.qty, |pair| dst_buf.push(pair));

        let residue = r.qty - taken;
        if !qty_is_zero(residue) {
            dst_buf.push(Pair {
                origin: r.src,
                qty: residue,
            });
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.buffers[v.index()].total()
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        OriginSet::from_vertex_pairs(self.buffers[v.index()].iter().map(|p| (p.origin, p.qty)))
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.buffers.iter().map(|b| b.footprint_bytes()).sum(),
            paths_bytes: 0,
            index_bytes: std::mem::size_of::<QueueBuffer>() * self.buffers.capacity(),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
}

impl MigratableTracker for ReceiptOrderTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            buf: std::mem::replace(&mut self.buffers[i], QueueBuffer::new(self.discipline)),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        self.buffers[v.index()] = taken.buf;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.buf.encode_into(out);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            buf: QueueBuffer::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// Compare a buffer's pairs against an expected multiset of (origin, qty).
    fn assert_pairs(t: &ReceiptOrderTracker, vertex: u32, expected: &[(u32, f64)]) {
        let mut got: Vec<(u32, f64)> = t
            .pairs(v(vertex))
            .iter()
            .map(|(o, q)| (o.raw(), *q))
            .collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut want = expected.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            got.len(),
            want.len(),
            "pairs at v{vertex}: got {got:?} want {want:?}"
        );
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(
                g.0, w.0,
                "origin mismatch at v{vertex}: {got:?} vs {want:?}"
            );
            assert!(qty_approx_eq(g.1, w.1), "qty mismatch at v{vertex}");
        }
    }

    /// Reproduces Table 4 of the paper step by step (LIFO policy).
    #[test]
    fn table4_lifo() {
        let rs = paper_running_example();
        let mut t = ReceiptOrderTracker::lifo(3);

        t.process(&rs[0]);
        assert_pairs(&t, 2, &[(1, 3.0)]);

        t.process(&rs[1]);
        assert_pairs(&t, 0, &[(1, 3.0), (2, 2.0)]);
        assert_pairs(&t, 2, &[]);

        t.process(&rs[2]);
        assert_pairs(&t, 0, &[(1, 2.0)]);
        assert_pairs(&t, 1, &[(1, 1.0), (2, 2.0)]);

        t.process(&rs[3]);
        assert_pairs(&t, 0, &[(1, 2.0)]);
        assert_pairs(&t, 1, &[]);
        assert_pairs(&t, 2, &[(1, 1.0), (2, 2.0), (1, 4.0)]);

        t.process(&rs[4]);
        assert_pairs(&t, 0, &[(1, 2.0)]);
        assert_pairs(&t, 1, &[(1, 2.0)]);
        assert_pairs(&t, 2, &[(1, 1.0), (2, 2.0), (1, 2.0)]);

        t.process(&rs[5]);
        assert_pairs(&t, 0, &[(1, 2.0), (1, 1.0)]);
        assert_pairs(&t, 1, &[(1, 2.0)]);
        assert_pairs(&t, 2, &[(1, 1.0), (2, 2.0), (1, 1.0)]);

        assert!(t.check_all_invariants());
    }

    /// FIFO differs from LIFO: at the third interaction of the running
    /// example (v0→v1, q=3), FIFO relays the pair received first, i.e. the
    /// 3 units originating from v1, and keeps the 2 units from v2.
    #[test]
    fn fifo_differs_from_lifo() {
        let rs = paper_running_example();
        let mut t = ReceiptOrderTracker::fifo(3);
        for r in &rs[..3] {
            t.process(r);
        }
        assert_pairs(&t, 0, &[(2, 2.0)]);
        assert_pairs(&t, 1, &[(1, 3.0)]);
    }

    /// Buffer totals always agree with the provenance-free baseline.
    #[test]
    fn totals_match_noprov_for_both_disciplines() {
        use crate::tracker::no_prov::NoProvTracker;
        for discipline in [Discipline::Fifo, Discipline::Lifo] {
            let mut a = ReceiptOrderTracker::with_discipline(3, discipline);
            let mut b = NoProvTracker::new(3);
            for r in paper_running_example() {
                a.process(&r);
                b.process(&r);
                for i in 0..3 {
                    assert!(
                        qty_approx_eq(a.buffered(v(i)), b.buffered(v(i))),
                        "{discipline:?} diverged from NoProv at v{i}"
                    );
                }
            }
        }
    }

    /// Under the running example, LIFO and LRB end with the same origin
    /// decomposition at v0 and v1 (they only differ in intermediate orders),
    /// which double-checks both implementations.
    #[test]
    fn lifo_final_origins_match_table_totals() {
        let mut t = ReceiptOrderTracker::lifo(3);
        t.process_all(&paper_running_example());
        let o0 = t.origins(v(0));
        assert!(qty_approx_eq(o0.quantity_from_vertex(v(1)), 3.0));
        let o1 = t.origins(v(1));
        assert!(qty_approx_eq(o1.quantity_from_vertex(v(1)), 2.0));
        let o2 = t.origins(v(2));
        assert!(qty_approx_eq(o2.quantity_from_vertex(v(1)), 2.0));
        assert!(qty_approx_eq(o2.quantity_from_vertex(v(2)), 2.0));
    }

    #[test]
    fn pair_count_grows_at_most_one_per_interaction() {
        let rs = paper_running_example();
        for discipline in [Discipline::Fifo, Discipline::Lifo] {
            let mut t = ReceiptOrderTracker::with_discipline(3, discipline);
            let mut prev = 0usize;
            for r in &rs {
                t.process(r);
                let now = t.total_pairs();
                assert!(now <= prev + 1);
                prev = now;
            }
        }
    }

    #[test]
    fn newborn_pair_when_buffer_insufficient() {
        let mut t = ReceiptOrderTracker::fifo(2);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 2.5));
        assert_pairs(&t, 1, &[(0, 2.5)]);
        assert!(qty_approx_eq(t.buffered(v(0)), 0.0));
    }

    #[test]
    fn footprint_and_name() {
        let mut t = ReceiptOrderTracker::lifo(3);
        t.process_all(&paper_running_example());
        assert!(t.footprint().entries_bytes > 0);
        assert_eq!(t.footprint().paths_bytes, 0);
        assert_eq!(t.name(), "LIFO");
        assert_eq!(ReceiptOrderTracker::fifo(1).name(), "FIFO");
        assert_eq!(t.discipline(), Discipline::Lifo);
    }
}
