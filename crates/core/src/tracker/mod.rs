//! Provenance trackers: one streaming state machine per selection policy.
//!
//! Every tracker consumes interactions in time order and can answer, at any
//! moment, the provenance question of Definition 2: *which origins make up
//! the quantity buffered at vertex v right now?*
//!
//! | Tracker | Paper | Complexity (space / per-interaction time) |
//! |---------|-------|--------------------------------------------|
//! | [`no_prov::NoProvTracker`] | Alg. 1 | O(\|V\|) / O(1) |
//! | [`generation_time::GenerationTimeTracker`] | §4.1, Alg. 2 | O(\|R\|) / O((\|R\|/\|V\|)·log(\|R\|/\|V\|)) expected |
//! | [`receipt_order::ReceiptOrderTracker`] | §4.2 | O(\|R\|) / O(\|R\|/\|V\|) expected |
//! | [`proportional_dense::ProportionalDenseTracker`] | §4.3, Alg. 3 | O(\|V\|²) / O(\|V\|) |
//! | [`proportional_sparse::ProportionalSparseTracker`] | §4.3 | O(\|V\|·ℓ) / O(ℓ) |
//! | [`proportional_sparse::ProportionalSparseTracker::adaptive`] | §4.3 (runtime dense/sparse) | O(\|V\|·min(ℓ, \|V\|)) / O(min(ℓ, \|V\|)) |
//! | [`selective::SelectiveTracker`] | §5.1 | O(k·\|V\|) / O(k) |
//! | [`grouped::GroupedTracker`] | §5.2 | O(m·\|V\|) / O(m) |
//! | [`windowed::WindowedTracker`] | §5.3.1 | bounded by window W |
//! | [`windowed_time::TimeWindowedTracker`] | §5.3.1 (time-based variant) | bounded by window duration D |
//! | [`budget::BudgetTracker`] | §5.3.2 | O(C·\|V\|) / O(C) |
//! | [`path::PathTracker`] | §6 | O(\|R\|²/\|V\|) space |
//! | [`path_generation::GenerationPathTracker`] | §6 on top of §4.1 | O(\|R\|²/\|V\|) space |
//! | [`lazy::LazyReplayProvenance`] | §8 (future work: replay-lazy) | O(\|R\|) log / O(prefix) per query |
//! | [`backtrace::BacktraceIndex`] | §8 (future work: backtracing) | O(\|R\|) log / O(relevant prefix) per query |
//! | [`diffusion::DiffusionTracker`] | §8 (future work: diffusion instead of relay) | O(\|V\|·ℓ) / O(ℓ) |

pub mod backtrace;
pub mod budget;
pub mod diffusion;
pub mod generation_time;
pub mod grouped;
pub mod lazy;
pub mod no_prov;
pub mod path;
pub mod path_generation;
pub mod proportional_dense;
pub mod proportional_sparse;
pub mod receipt_order;
pub mod selective;
pub mod windowed;
pub mod windowed_time;

use crate::error::Result;
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint, SpikeMonitor};
use crate::origins::OriginSet;
use crate::policy::{PolicyConfig, SelectionPolicy};
use crate::quantity::{qty_approx_eq, Quantity};
use crate::stream::InteractionSource;

/// The per-vertex provenance state of one vertex, moved out of a tracker for
/// sharded execution (the `tin-shard` crate).
///
/// Every tracker's state is a per-vertex structure — a provenance vector, a
/// receipt queue, a generation-time heap, a path buffer — plus read-only
/// configuration and scalar counters. A sharded engine migrates exactly this
/// per-vertex structure between shard-local tracker replicas: the native
/// buffers are *moved* (the sparse vectors keep their packed SoA key/value
/// layout from [`crate::sparse_vec`]), never re-serialised, so a re-imported
/// vertex behaves bit-identically to one that never left.
///
/// The payload is type-erased: each tracker knows its own state shape and
/// [`ShardVertexState::downcast`]s it back on import. Mixing states between
/// tracker types is a programming error and panics.
pub struct ShardVertexState {
    payload: Box<dyn std::any::Any + Send>,
    /// Logical footprint of the payload when it was taken (0 when unknown).
    footprint_bytes: usize,
}

impl ShardVertexState {
    /// Wrap a tracker-specific per-vertex state payload.
    pub fn new<T: std::any::Any + Send>(payload: T) -> Self {
        ShardVertexState {
            payload: Box::new(payload),
            footprint_bytes: 0,
        }
    }

    /// Wrap a payload and record its logical footprint, so the sharded
    /// engine's skew metrics can weigh migrations by bytes moved.
    pub fn with_footprint<T: std::any::Any + Send>(payload: T, footprint_bytes: usize) -> Self {
        ShardVertexState {
            payload: Box::new(payload),
            footprint_bytes,
        }
    }

    /// Logical footprint of the wrapped payload at take time (0 when the
    /// producing tracker did not report one).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.footprint_bytes
    }

    /// Recover the concrete payload.
    ///
    /// # Panics
    /// Panics if the state was produced by a different tracker type — shard
    /// protocol states must round-trip through trackers of one configuration.
    pub fn downcast<T: std::any::Any + Send>(self) -> T {
        *self
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("vertex state belongs to a different tracker type"))
    }
}

impl std::fmt::Debug for ShardVertexState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ShardVertexState(..)")
    }
}

/// The per-tracker half of the shared state-migration and spike-monitor
/// plumbing.
///
/// Every factory tracker used to hand-roll its `take_vertex_state` /
/// `put_vertex_state` / spike-monitor trait methods — 13 near-identical
/// copies whose protocol details (type-erasure, downcast, the order of
/// monitor accounting relative to the state move) silently drifted apart.
/// Now a tracker implements only the genuinely varying part — *which* fields
/// migrate and how an empty slot is rebuilt — and wires the trait methods
/// through the one shared implementation with [`impl_migration_hooks!`] and
/// [`impl_spike_monitor_hooks!`]. The `tin-lint` pass (lint
/// `tracker_conformance`) enforces that every tracker uses this path.
///
/// [`impl_migration_hooks!`]: crate::impl_migration_hooks
/// [`impl_spike_monitor_hooks!`]: crate::impl_spike_monitor_hooks
pub trait MigratableTracker {
    /// The concrete per-vertex payload moved by the shard protocol.
    type Taken: std::any::Any + Send;

    /// Move vertex `v`'s provenance slots out, leaving hollow (empty)
    /// replacements behind. The hollow slot is never read or processed until
    /// [`Self::install`] puts a state back (guaranteed by the sharded
    /// engine's conflict-free batching).
    fn extract(&mut self, v: VertexId) -> Self::Taken;

    /// Re-install a payload previously produced by [`Self::extract`] on a
    /// tracker of the same configuration.
    fn install(&mut self, v: VertexId, taken: Self::Taken);

    /// Footprint bytes that travel with the payload. Monitored trackers
    /// report the migrated buffer bytes here so the spike estimate moves
    /// with the state: without the delta a borrowing shard's estimate
    /// inflates by every borrowed growth while the owner's misses it, and
    /// spikes fire on the wrong replica.
    fn taken_footprint(_taken: &Self::Taken) -> usize {
        0
    }

    /// The tracker's spike-monitor slot, for trackers that support footprint
    /// spike notifications. `None` (the default) opts out of monitoring.
    fn monitor_store(&mut self) -> Option<&mut Option<SpikeMonitor>> {
        None
    }

    /// A full O(state) footprint estimate, used to baseline the monitor when
    /// it is armed. Only meaningful for trackers with a monitor store.
    fn footprint_estimate(&self) -> usize {
        0
    }

    /// Append the checkpoint encoding of a migrated payload. Must be the
    /// exact inverse of [`Self::decode_taken`]: a decoded payload installed
    /// via [`Self::install`] behaves bit-identically to the original.
    fn encode_taken(taken: &Self::Taken, out: &mut Vec<u8>);

    /// Decode a payload written by [`Self::encode_taken`].
    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> Result<Self::Taken>;
}

/// Shared take-side of the shard migration protocol: extract the payload,
/// migrate its footprint out of the spike estimate, type-erase it.
pub fn shared_take<T: MigratableTracker>(tracker: &mut T, v: VertexId) -> ShardVertexState {
    let taken = tracker.extract(v);
    let migrated = T::taken_footprint(&taken);
    if migrated > 0 {
        if let Some(monitor) = tracker.monitor_store().and_then(Option::as_mut) {
            monitor.apply_delta(-(migrated as isize));
        }
    }
    ShardVertexState::with_footprint(taken, migrated)
}

/// Shared put-side of the shard migration protocol: downcast the payload,
/// migrate its footprint back into the spike estimate, re-install it.
pub fn shared_put<T: MigratableTracker>(tracker: &mut T, v: VertexId, state: ShardVertexState) {
    let taken: T::Taken = state.downcast();
    let migrated = T::taken_footprint(&taken);
    if migrated > 0 {
        if let Some(monitor) = tracker.monitor_store().and_then(Option::as_mut) {
            monitor.apply_delta(migrated as isize);
        }
    }
    tracker.install(v, taken);
}

/// Shared checkpoint-capture path: extract the payload, encode it, put it
/// straight back. The extract/install round-trip moves the buffers
/// wholesale, so the tracker's observable state is untouched.
pub fn shared_encode<T: MigratableTracker>(tracker: &mut T, v: VertexId, out: &mut Vec<u8>) {
    let taken = tracker.extract(v);
    T::encode_taken(&taken, out);
    tracker.install(v, taken);
}

/// Shared checkpoint-restore path: decode a payload and install it. The
/// target slot must be hollow (freshly built or previously extracted).
pub fn shared_restore<T: MigratableTracker>(
    tracker: &mut T,
    v: VertexId,
    r: &mut crate::codec::ByteReader<'_>,
) -> Result<()> {
    let taken = T::decode_taken(r)?;
    tracker.install(v, taken);
    Ok(())
}

/// Shared decode-without-install path: turn checkpoint bytes into the
/// type-erased [`ShardVertexState`] the shard protocol moves around. The
/// sharded engine's main thread uses a probe tracker of the right
/// configuration to decode states it then routes to the owning shard.
pub fn shared_decode_state<T: MigratableTracker>(
    r: &mut crate::codec::ByteReader<'_>,
) -> Result<ShardVertexState> {
    Ok(ShardVertexState::new(T::decode_taken(r)?))
}

/// Shared implementation behind `ProvenanceTracker::arm_spike_monitor`.
pub fn shared_arm_spike_monitor<T: MigratableTracker>(tracker: &mut T, fraction: f64) -> bool {
    let estimate = tracker.footprint_estimate();
    match tracker.monitor_store() {
        Some(slot) => {
            *slot = Some(SpikeMonitor::new(fraction, estimate));
            true
        }
        None => false,
    }
}

/// Shared implementation behind `ProvenanceTracker::take_footprint_spike`.
pub fn shared_take_footprint_spike<T: MigratableTracker>(tracker: &mut T) -> bool {
    tracker
        .monitor_store()
        .and_then(Option::as_mut)
        .is_some_and(SpikeMonitor::take_spike)
}

/// Shared implementation behind `ProvenanceTracker::note_footprint_sampled`.
pub fn shared_note_footprint_sampled<T: MigratableTracker>(tracker: &mut T) {
    if let Some(monitor) = tracker.monitor_store().and_then(Option::as_mut) {
        monitor.rebaseline();
    }
}

/// Wire `take_vertex_state` / `put_vertex_state` through the shared
/// [`MigratableTracker`] plumbing. Invoke inside an
/// `impl ProvenanceTracker for T` block of a type that implements
/// [`MigratableTracker`]; expands to the two trait methods.
#[macro_export]
macro_rules! impl_migration_hooks {
    () => {
        fn take_vertex_state(
            &mut self,
            v: $crate::ids::VertexId,
        ) -> Option<$crate::tracker::ShardVertexState> {
            Some($crate::tracker::shared_take(self, v))
        }

        fn put_vertex_state(
            &mut self,
            v: $crate::ids::VertexId,
            state: $crate::tracker::ShardVertexState,
        ) {
            $crate::tracker::shared_put(self, v, state);
        }

        fn encode_vertex_state(&mut self, v: $crate::ids::VertexId, out: &mut Vec<u8>) -> bool {
            $crate::tracker::shared_encode(self, v, out);
            true
        }

        fn restore_vertex_state(
            &mut self,
            v: $crate::ids::VertexId,
            r: &mut $crate::codec::ByteReader<'_>,
        ) -> $crate::error::Result<()> {
            $crate::tracker::shared_restore(self, v, r)
        }

        fn decode_vertex_state(
            &self,
            r: &mut $crate::codec::ByteReader<'_>,
        ) -> $crate::error::Result<$crate::tracker::ShardVertexState> {
            $crate::tracker::shared_decode_state::<Self>(r)
        }
    };
}

/// Wire the three spike-monitor trait methods through the shared
/// [`MigratableTracker`] plumbing. Invoke inside an
/// `impl ProvenanceTracker for T` block of a type whose
/// [`MigratableTracker::monitor_store`] returns its monitor slot.
#[macro_export]
macro_rules! impl_spike_monitor_hooks {
    () => {
        fn arm_spike_monitor(&mut self, fraction: f64) -> bool {
            $crate::tracker::shared_arm_spike_monitor(self, fraction)
        }

        fn take_footprint_spike(&mut self) -> bool {
            $crate::tracker::shared_take_footprint_spike(self)
        }

        fn note_footprint_sampled(&mut self) {
            $crate::tracker::shared_note_footprint_sampled(self)
        }
    };
}

/// Split one mutable slice into simultaneous `(source, destination)` vector
/// borrows — the per-interaction borrow dance shared by every vector-based
/// tracker. `src` and `dst` must be distinct in-bounds indices.
#[inline]
pub(crate) fn split_src_dst<T>(items: &mut [T], src: usize, dst: usize) -> (&mut T, &mut T) {
    debug_assert_ne!(src, dst, "self-loops are rejected at stream validation");
    if src < dst {
        let (a, b) = items.split_at_mut(dst);
        (&mut a[src], &mut b[0])
    } else {
        let (a, b) = items.split_at_mut(src);
        (&mut b[0], &mut a[dst])
    }
}

/// The uniform streaming interface implemented by every provenance tracker.
pub trait ProvenanceTracker {
    /// A short human-readable name (used in reports and benchmark output).
    fn name(&self) -> &'static str;

    /// Number of vertices this tracker was configured for.
    fn num_vertices(&self) -> usize;

    /// Apply one interaction. Interactions must arrive in non-decreasing time
    /// order; endpoints must be valid vertex indices.
    fn process(&mut self, r: &Interaction);

    /// Total quantity currently buffered at `v` (`|B_v|`).
    fn buffered(&self, v: VertexId) -> Quantity;

    /// The provenance of the quantity buffered at `v`: the origin set
    /// `O(t, B_v)` of Definition 2.
    fn origins(&self, v: VertexId) -> OriginSet;

    /// Logical memory footprint of the provenance state, broken down into
    /// entries / paths / indexes (Table 8 and Table 10 reporting).
    fn footprint(&self) -> FootprintBreakdown;

    /// Number of interactions processed so far.
    fn interactions_processed(&self) -> usize;

    /// Apply a whole slice of interactions in order.
    fn process_all(&mut self, interactions: &[Interaction]) {
        for r in interactions {
            self.process(r);
        }
    }

    /// Drain an [`InteractionSource`], applying every interaction.
    fn process_source(&mut self, source: &mut dyn InteractionSource) -> Result<usize> {
        let mut n = 0;
        while let Some(r) = source.next_interaction()? {
            self.process(&r);
            n += 1;
        }
        Ok(n)
    }

    /// Total quantity buffered anywhere in the network.
    fn total_buffered(&self) -> Quantity {
        (0..self.num_vertices())
            .map(|i| self.buffered(VertexId::from(i)))
            .sum()
    }

    /// Check the Definition 2 invariant `Σ_{τ ∈ O(t,B_v)} τ.q = |B_v|` at a
    /// single vertex. Provided for tests and debugging.
    fn check_origin_invariant(&self, v: VertexId) -> bool {
        qty_approx_eq(self.origins(v).total(), self.buffered(v))
    }

    /// Check the origin invariant at every vertex.
    fn check_all_invariants(&self) -> bool {
        (0..self.num_vertices()).all(|i| self.check_origin_invariant(VertexId::from(i)))
    }

    // --- sharded execution support (see the `tin-shard` crate) ---

    /// Move vertex `v`'s provenance state out of the tracker, leaving a
    /// hollow (empty) slot behind. The state can later be re-installed —
    /// into this tracker or into another instance of the *same*
    /// configuration — with [`Self::put_vertex_state`].
    ///
    /// A hollow slot must not be read or processed until a state is put
    /// back; the sharded engine's conflict-free batching guarantees this.
    ///
    /// Returns `None` for trackers that do not support sharded execution
    /// (none of the [`build_tracker`] policies — they all do — but external
    /// tracker implementations get a safe default).
    fn take_vertex_state(&mut self, v: VertexId) -> Option<ShardVertexState> {
        let _ = v;
        None
    }

    /// Re-install a per-vertex state previously produced by
    /// [`Self::take_vertex_state`] on a tracker of the same configuration.
    ///
    /// # Panics
    /// The default implementation panics: trackers that support sharding
    /// override both methods together.
    fn put_vertex_state(&mut self, v: VertexId, state: ShardVertexState) {
        let _ = (v, state);
        panic!("this tracker does not support sharded execution");
    }

    /// Append the checkpoint encoding of vertex `v`'s provenance state to
    /// `out`. Returns `false` (writing nothing) for trackers that do not
    /// support durable checkpoints; every [`build_tracker`] policy does.
    ///
    /// Implemented internally as an extract → encode → re-install round
    /// trip over the migration payload, so the tracker's observable state
    /// is unchanged by the capture.
    fn encode_vertex_state(&mut self, v: VertexId, out: &mut Vec<u8>) -> bool {
        let _ = (v, out);
        false
    }

    /// Install vertex `v`'s state from checkpoint bytes written by
    /// [`Self::encode_vertex_state`] on a tracker of the same configuration.
    /// Call [`Self::sync_epoch`] to the checkpoint's stream position
    /// *before* restoring any vertex, so window resets fired by the sync
    /// cannot clobber restored state.
    fn restore_vertex_state(
        &mut self,
        v: VertexId,
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<()> {
        let _ = v;
        Err(r.corrupt("this tracker does not support checkpoint restore"))
    }

    /// Decode checkpoint bytes into the type-erased per-vertex state of the
    /// shard migration protocol, without installing it. The sharded engine's
    /// main thread uses this (on a probe tracker of the run's configuration)
    /// to repartition a checkpoint across a possibly different shard count.
    fn decode_vertex_state(
        &self,
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<ShardVertexState> {
        Err(r.corrupt("this tracker does not support checkpoint restore"))
    }

    /// Advance the tracker's global-epoch clock — the stream position
    /// (`processed` interactions so far) and the latest timestamp — without
    /// processing any interaction, firing any window resets crossed on the
    /// way (count-based and time-based windowed tracking key their resets to
    /// these global coordinates). Trackers without epoch semantics ignore
    /// this; the sharded engine calls it so every shard replica fires the
    /// same resets at the same logical stream positions as a sequential run.
    fn sync_epoch(&mut self, processed: usize, now: f64) {
        let _ = (processed, now);
    }

    // --- footprint spike notifications (engine peak accounting) ---

    /// Arm an internal footprint-spike monitor: after this call the tracker
    /// cheaply tracks its own footprint estimate and reports — via
    /// [`Self::take_footprint_spike`] — whenever the estimate drifted by
    /// more than `fraction` (relative) since the engine last sampled.
    /// Returns `true` if the tracker supports spike monitoring.
    fn arm_spike_monitor(&mut self, fraction: f64) -> bool {
        let _ = fraction;
        false
    }

    /// True if the footprint estimate spiked past the armed threshold since
    /// the last engine sample (a `true` reading re-baselines the monitor;
    /// `false` leaves it untouched). The engine samples the full footprint
    /// whenever this fires, so
    /// [`crate::engine::EngineReport::peak_footprint_bytes`] no longer
    /// misses spikes between its periodic samples.
    fn take_footprint_spike(&mut self) -> bool {
        false
    }

    /// Notification that the engine just took a full footprint sample for a
    /// reason other than a spike (the periodic schedule): monitored trackers
    /// re-baseline so drift is always measured against the last sample.
    fn note_footprint_sampled(&mut self) {}
}

impl MemoryFootprint for dyn ProvenanceTracker + '_ {
    fn footprint_bytes(&self) -> usize {
        self.footprint().total()
    }
}

/// Build a boxed tracker from a [`PolicyConfig`].
///
/// # Errors
/// Returns [`crate::TinError::InvalidConfig`] when the configuration is
/// internally inconsistent (e.g. zero groups, empty tracked set, zero
/// window/budget, or a group mapping of the wrong length).
pub fn build_tracker(
    config: &PolicyConfig,
    num_vertices: usize,
) -> Result<Box<dyn ProvenanceTracker>> {
    use crate::error::TinError;
    Ok(match config {
        PolicyConfig::Plain(policy) => match policy {
            SelectionPolicy::NoProvenance => Box::new(no_prov::NoProvTracker::new(num_vertices)),
            SelectionPolicy::LeastRecentlyBorn => Box::new(
                generation_time::GenerationTimeTracker::least_recently_born(num_vertices),
            ),
            SelectionPolicy::MostRecentlyBorn => Box::new(
                generation_time::GenerationTimeTracker::most_recently_born(num_vertices),
            ),
            SelectionPolicy::Fifo => {
                Box::new(receipt_order::ReceiptOrderTracker::fifo(num_vertices))
            }
            SelectionPolicy::Lifo => {
                Box::new(receipt_order::ReceiptOrderTracker::lifo(num_vertices))
            }
            SelectionPolicy::ProportionalDense => Box::new(
                proportional_dense::ProportionalDenseTracker::new(num_vertices),
            ),
            SelectionPolicy::ProportionalSparse => Box::new(
                proportional_sparse::ProportionalSparseTracker::new(num_vertices),
            ),
        },
        PolicyConfig::Selective { tracked } => {
            if tracked.is_empty() {
                return Err(TinError::InvalidConfig(
                    "selective tracking needs at least one tracked vertex".into(),
                ));
            }
            Box::new(selective::SelectiveTracker::new(
                num_vertices,
                tracked.clone(),
            )?)
        }
        PolicyConfig::Grouped {
            num_groups,
            group_of,
        } => Box::new(grouped::GroupedTracker::new(
            num_vertices,
            *num_groups,
            group_of.clone(),
        )?),
        PolicyConfig::Windowed { window } => {
            Box::new(windowed::WindowedTracker::new(num_vertices, *window)?)
        }
        PolicyConfig::TimeWindowed { duration } => Box::new(
            windowed_time::TimeWindowedTracker::new(num_vertices, *duration)?,
        ),
        PolicyConfig::AdaptiveProportional { dense_threshold } => {
            Box::new(proportional_sparse::ProportionalSparseTracker::adaptive(
                num_vertices,
                *dense_threshold,
            )?)
        }
        PolicyConfig::Budgeted {
            capacity,
            keep_fraction,
            criterion,
            important,
        } => Box::new(budget::BudgetTracker::with_criterion(
            num_vertices,
            *capacity,
            *keep_fraction,
            *criterion,
            important.clone(),
        )?),
        PolicyConfig::PathTracking { lifo } => Box::new(if *lifo {
            path::PathTracker::lifo(num_vertices)
        } else {
            path::PathTracker::fifo(num_vertices)
        }),
        PolicyConfig::GenerationPaths { most_recent } => Box::new(if *most_recent {
            path_generation::GenerationPathTracker::most_recently_born(num_vertices)
        } else {
            path_generation::GenerationPathTracker::least_recently_born(num_vertices)
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;

    #[test]
    fn factory_builds_every_plain_policy() {
        for policy in SelectionPolicy::all() {
            let mut tracker = build_tracker(&PolicyConfig::Plain(policy), 3).unwrap();
            tracker.process_all(&paper_running_example());
            assert_eq!(tracker.interactions_processed(), 6);
            assert!(tracker.check_all_invariants(), "policy {policy}");
        }
    }

    #[test]
    fn factory_builds_scalable_variants() {
        let configs = vec![
            PolicyConfig::Selective {
                tracked: vec![VertexId::new(1)],
            },
            PolicyConfig::Grouped {
                num_groups: 2,
                group_of: vec![0, 1, 0],
            },
            PolicyConfig::Windowed { window: 2 },
            PolicyConfig::TimeWindowed { duration: 2.5 },
            PolicyConfig::budget(4),
            PolicyConfig::PathTracking { lifo: true },
            PolicyConfig::PathTracking { lifo: false },
            PolicyConfig::GenerationPaths { most_recent: true },
            PolicyConfig::GenerationPaths { most_recent: false },
        ];
        for config in configs {
            let mut tracker = build_tracker(&config, 3).unwrap();
            tracker.process_all(&paper_running_example());
            assert!(tracker.check_all_invariants(), "config {}", config.key());
            assert!(tracker.total_buffered() > 0.0);
        }
    }

    #[test]
    fn factory_rejects_bad_configs() {
        assert!(build_tracker(&PolicyConfig::Selective { tracked: vec![] }, 3).is_err());
        assert!(build_tracker(
            &PolicyConfig::Grouped {
                num_groups: 0,
                group_of: vec![]
            },
            3
        )
        .is_err());
        assert!(build_tracker(&PolicyConfig::Windowed { window: 0 }, 3).is_err());
        assert!(build_tracker(&PolicyConfig::TimeWindowed { duration: 0.0 }, 3).is_err());
        assert!(build_tracker(&PolicyConfig::budget(0), 3).is_err());
    }

    #[test]
    fn process_source_drains_stream() {
        let mut tracker = build_tracker(&PolicyConfig::Plain(SelectionPolicy::Fifo), 3).unwrap();
        let mut src = crate::stream::VecSource::new(paper_running_example());
        let n = tracker.process_source(&mut src).unwrap();
        assert_eq!(n, 6);
        assert_eq!(tracker.interactions_processed(), 6);
    }

    #[test]
    fn dyn_tracker_memory_footprint_trait_object() {
        let mut tracker = build_tracker(&PolicyConfig::Plain(SelectionPolicy::Lifo), 3).unwrap();
        tracker.process_all(&paper_running_example());
        let dyn_ref: &dyn ProvenanceTracker = tracker.as_ref();
        assert!(dyn_ref.footprint_bytes() > 0);
    }
}
