//! Path tracking (how-provenance) on top of the generation-time policies.
//!
//! Section 6 of the paper defines path tracking "for the selection models of
//! Sections 4.1 and 4.2": every buffered quantity element carries the route it
//! has travelled from its origin. [`crate::tracker::path::PathTracker`] covers
//! the receipt-order policies (Section 4.2); this module covers the
//! generation-time policies (Section 4.1): the buffered elements are
//! `(origin, birth time, quantity, path)` quadruples organised in a heap keyed
//! by birth time, exactly as in Algorithm 2, and every relay extends the
//! element's path with the transmitter vertex.
//!
//! The origin decomposition produced by this tracker is identical to the plain
//! [`crate::tracker::generation_time::GenerationTimeTracker`]; the paths are
//! additional information, at the extra memory cost analysed in Section 6.

use std::collections::BinaryHeap;

use crate::buffer::heap_buffer::HeapKind;
use crate::ids::{Timestamp, VertexId};
use crate::interaction::Interaction;
use crate::memory::FootprintBreakdown;
use crate::origins::OriginSet;
use crate::quantity::{qty_gt, qty_is_zero, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the whole path heap (its
/// backing array, per-vertex sequence counter and tie-breaking layout move
/// wholesale).
pub struct TakenState {
    buf: PathHeapBuffer,
}

/// A buffered quantity element annotated with its birth time and its transfer
/// path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathTriple {
    /// The vertex that generated this quantity.
    pub origin: VertexId,
    /// When the quantity was generated.
    pub birth: Timestamp,
    /// The quantity.
    pub qty: Quantity,
    /// The route followed so far: `path[0]` is the origin, each further entry
    /// is a vertex that relayed the element. The current holder is not part of
    /// the path.
    pub path: Vec<VertexId>,
}

impl PathTriple {
    /// Number of relays since the element left its origin (`path.len() - 1`).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Internal heap entry: priority key (birth time, sign-adjusted for the heap
/// kind) plus an insertion sequence number for deterministic tie-breaking.
#[derive(Clone, Debug)]
struct Entry {
    key: f64,
    seq: u64,
    triple: PathTriple,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Larger key wins; among equal keys, the earlier insertion wins.
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-vertex heap of path-annotated triples.
#[derive(Clone, Debug)]
struct PathHeapBuffer {
    heap: BinaryHeap<Entry>,
    total: Quantity,
    next_seq: u64,
}

impl PathHeapBuffer {
    fn new() -> Self {
        PathHeapBuffer {
            heap: BinaryHeap::new(),
            total: 0.0,
            next_seq: 0,
        }
    }

    fn key_for(kind: HeapKind, birth: Timestamp) -> f64 {
        match kind {
            HeapKind::LeastRecentlyBorn => -birth.0,
            HeapKind::MostRecentlyBorn => birth.0,
        }
    }

    fn push(&mut self, kind: HeapKind, triple: PathTriple) {
        if qty_is_zero(triple.qty) {
            return;
        }
        let key = Self::key_for(kind, triple.birth);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.total += triple.qty;
        self.heap.push(Entry { key, seq, triple });
    }

    /// Select up to `amount` according to the heap order, passing every
    /// transferred element (whole or split fragment) to `sink`.
    fn take(
        &mut self,
        kind: HeapKind,
        amount: Quantity,
        mut sink: impl FnMut(PathTriple),
    ) -> Quantity {
        let mut residue = amount;
        let mut taken = 0.0;
        while residue > 0.0 && !qty_is_zero(residue) && !self.heap.is_empty() {
            let top_qty = self.heap.peek().map(|e| e.triple.qty).unwrap_or(0.0);
            if qty_gt(top_qty, residue) {
                // Split: the moved fragment inherits the parent's origin,
                // birth time and path (Algorithm 2, line 9).
                let mut top = self
                    .heap
                    .peek_mut()
                    .expect("buffer non-empty: peeked above");
                top.triple.qty -= residue;
                let fragment = PathTriple {
                    origin: top.triple.origin,
                    birth: top.triple.birth,
                    qty: residue,
                    path: top.triple.path.clone(),
                };
                drop(top);
                self.total -= residue;
                taken += residue;
                sink(fragment);
                residue = 0.0;
            } else {
                let e = self.heap.pop().expect("buffer non-empty: peeked above");
                self.total -= e.triple.qty;
                residue -= e.triple.qty;
                taken += e.triple.qty;
                sink(e.triple);
            }
        }
        if self.heap.is_empty() {
            self.total = 0.0;
        }
        // The heap kind only matters at push time (key computation), but keep
        // the parameter so the call sites read naturally.
        let _ = kind;
        taken
    }

    /// Checkpoint encoding: entries in the heap's internal array order (see
    /// [`crate::buffer::heap_buffer::HeapBuffer::encode_into`] — rebuilding
    /// from an already-valid heap array preserves the layout, so restored
    /// tie-breaks and splits replay bit-identically).
    fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_f64, put_u32, put_u64, put_usize};
        put_f64(out, self.total);
        put_u64(out, self.next_seq);
        put_usize(out, self.heap.len());
        for e in self.heap.iter() {
            put_f64(out, e.key);
            put_u64(out, e.seq);
            put_u32(out, e.triple.origin.raw());
            put_f64(out, e.triple.birth.0);
            put_f64(out, e.triple.qty);
            put_usize(out, e.triple.path.len());
            for p in &e.triple.path {
                put_u32(out, p.raw());
            }
        }
    }

    fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        let total = r.f64()?;
        let next_seq = r.u64()?;
        let len = r.usize()?;
        // Each entry is ≥ 44 bytes (key, seq, origin, birth, qty, path len).
        if r.remaining() < len.saturating_mul(44) {
            return Err(r.corrupt(format!("truncated: {len} path-heap entries declared")));
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            let key = r.f64()?;
            let seq = r.u64()?;
            let origin = VertexId::new(r.u32()?);
            let birth = Timestamp(r.f64()?);
            let qty = r.f64()?;
            let hops = r.usize()?;
            if r.remaining() < hops.saturating_mul(4) {
                return Err(r.corrupt(format!("truncated: path of {hops} hops declared")));
            }
            let mut path = Vec::with_capacity(hops);
            for _ in 0..hops {
                path.push(VertexId::new(r.u32()?));
            }
            entries.push(Entry {
                key,
                seq,
                triple: PathTriple {
                    origin,
                    birth,
                    qty,
                    path,
                },
            });
        }
        Ok(PathHeapBuffer {
            heap: BinaryHeap::from(entries),
            total,
            next_seq,
        })
    }

    fn entries_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<Entry>()
    }

    fn paths_bytes(&self) -> usize {
        self.heap
            .iter()
            .map(|e| e.triple.path.capacity() * std::mem::size_of::<VertexId>())
            .sum()
    }
}

/// Generation-time provenance tracking (Section 4.1) extended with transfer
/// paths (Section 6).
#[derive(Clone, Debug)]
pub struct GenerationPathTracker {
    kind: HeapKind,
    buffers: Vec<PathHeapBuffer>,
    processed: usize,
}

impl GenerationPathTracker {
    /// Path tracking on top of the least-recently-born policy.
    pub fn least_recently_born(num_vertices: usize) -> Self {
        Self::with_kind(num_vertices, HeapKind::LeastRecentlyBorn)
    }

    /// Path tracking on top of the most-recently-born policy.
    pub fn most_recently_born(num_vertices: usize) -> Self {
        Self::with_kind(num_vertices, HeapKind::MostRecentlyBorn)
    }

    /// Build a tracker with an explicit heap kind.
    pub fn with_kind(num_vertices: usize, kind: HeapKind) -> Self {
        GenerationPathTracker {
            kind,
            buffers: (0..num_vertices).map(|_| PathHeapBuffer::new()).collect(),
            processed: 0,
        }
    }

    /// The underlying generation-time policy.
    pub fn kind(&self) -> HeapKind {
        self.kind
    }

    /// The path-annotated triples buffered at `v`, in unspecified (heap)
    /// order. Use [`GenerationPathTracker::sorted_elements`] for a
    /// deterministic view.
    pub fn elements(&self, v: VertexId) -> Vec<&PathTriple> {
        self.buffers[v.index()]
            .heap
            .iter()
            .map(|e| &e.triple)
            .collect()
    }

    /// The path-annotated triples buffered at `v`, sorted by birth time then
    /// origin (deterministic, for reporting and tests).
    pub fn sorted_elements(&self, v: VertexId) -> Vec<PathTriple> {
        let mut out: Vec<PathTriple> = self.buffers[v.index()]
            .heap
            .iter()
            .map(|e| e.triple.clone())
            .collect();
        out.sort_by(|a, b| {
            a.birth
                .cmp(&b.birth)
                .then_with(|| a.origin.cmp(&b.origin))
                .then_with(|| a.qty.total_cmp(&b.qty))
        });
        out
    }

    /// Average path length (number of relays) over all buffered elements.
    pub fn average_path_length(&self) -> f64 {
        let mut count = 0usize;
        let mut hops = 0usize;
        for b in &self.buffers {
            for e in &b.heap {
                count += 1;
                hops += e.triple.hops();
            }
        }
        if count == 0 {
            0.0
        } else {
            hops as f64 / count as f64
        }
    }

    /// Total number of buffered elements across all vertices.
    pub fn total_elements(&self) -> usize {
        self.buffers.iter().map(|b| b.heap.len()).sum()
    }
}

impl ProvenanceTracker for GenerationPathTracker {
    fn name(&self) -> &'static str {
        match self.kind {
            HeapKind::LeastRecentlyBorn => "Least Recently Born + paths",
            HeapKind::MostRecentlyBorn => "Most Recently Born + paths",
        }
    }

    fn num_vertices(&self) -> usize {
        self.buffers.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");

        let (src_buf, dst_buf) = split_src_dst(&mut self.buffers, s, d);

        let kind = self.kind;
        let transmitter = r.src;
        let taken = src_buf.take(kind, r.qty, |mut triple| {
            // Relayed element: extend its path with the transmitter vertex.
            triple.path.push(transmitter);
            dst_buf.push(kind, triple);
        });

        let residue = r.qty - taken;
        if !qty_is_zero(residue) {
            // Newborn element (Algorithm 2, line 19): origin and birth time
            // are the source vertex and the interaction time; the path starts
            // at the origin.
            dst_buf.push(
                kind,
                PathTriple {
                    origin: r.src,
                    birth: r.time,
                    qty: residue,
                    path: vec![r.src],
                },
            );
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.buffers[v.index()].total
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        OriginSet::from_vertex_pairs(
            self.buffers[v.index()]
                .heap
                .iter()
                .map(|e| (e.triple.origin, e.triple.qty)),
        )
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.buffers.iter().map(|b| b.entries_bytes()).sum(),
            paths_bytes: self.buffers.iter().map(|b| b.paths_bytes()).sum(),
            index_bytes: std::mem::size_of::<PathHeapBuffer>() * self.buffers.capacity(),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
}

impl MigratableTracker for GenerationPathTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            buf: std::mem::replace(&mut self.buffers[i], PathHeapBuffer::new()),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        self.buffers[v.index()] = taken.buf;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.buf.encode_into(out);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            buf: PathHeapBuffer::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::generation_time::GenerationTimeTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// Paths are extra information: the origin decomposition must match the
    /// plain generation-time tracker at every step.
    #[test]
    fn origins_match_plain_generation_time() {
        for most_recent in [false, true] {
            let mut with_paths = if most_recent {
                GenerationPathTracker::most_recently_born(3)
            } else {
                GenerationPathTracker::least_recently_born(3)
            };
            let mut plain = if most_recent {
                GenerationTimeTracker::most_recently_born(3)
            } else {
                GenerationTimeTracker::least_recently_born(3)
            };
            for r in paper_running_example() {
                with_paths.process(&r);
                plain.process(&r);
                for i in 0..3u32 {
                    assert!(qty_approx_eq(
                        with_paths.buffered(v(i)),
                        plain.buffered(v(i))
                    ));
                    assert!(
                        with_paths.origins(v(i)).approx_eq(&plain.origins(v(i))),
                        "most_recent={most_recent}, mismatch at v{i}"
                    );
                }
            }
        }
    }

    /// Table 3's oldest-first buffers, with the routes attached: after the
    /// second interaction, v0 holds 3 units born at v1 (route v1 → v2) and 2
    /// newborn units from v2.
    #[test]
    fn paths_record_routes_under_lrb() {
        let rs = paper_running_example();
        let mut t = GenerationPathTracker::least_recently_born(3);
        t.process_all(&rs[..2]);
        let elements = t.sorted_elements(v(0));
        assert_eq!(elements.len(), 2);
        let relayed = elements.iter().find(|e| e.origin == v(1)).unwrap();
        assert_eq!(relayed.path, vec![v(1), v(2)]);
        assert_eq!(relayed.birth, Timestamp::new(1.0));
        assert_eq!(relayed.hops(), 1);
        let newborn = elements.iter().find(|e| e.origin == v(2)).unwrap();
        assert_eq!(newborn.path, vec![v(2)]);
        assert_eq!(newborn.birth, Timestamp::new(3.0));
        assert_eq!(newborn.hops(), 0);
    }

    /// Splitting the oldest triple keeps the remainder (and its path) at the
    /// source and ships a fragment with an extended path.
    #[test]
    fn split_fragments_inherit_and_extend_path() {
        let rs = paper_running_example();
        let mut t = GenerationPathTracker::least_recently_born(3);
        // After the 4th interaction (v1→v2, q=7), Table 3 row 4: B_v2 holds
        // {(1,1,3),(1,5,4)}. The (1,1,3) element was relayed v1→v0? No: it
        // went v1 → v2 → v0 → v1 → v2, i.e. three relays after birth.
        t.process_all(&rs[..4]);
        let at_v2 = t.sorted_elements(v(2));
        assert_eq!(at_v2.len(), 2);
        let travelled = at_v2
            .iter()
            .find(|e| e.birth == Timestamp::new(1.0))
            .unwrap();
        assert_eq!(travelled.origin, v(1));
        assert!(qty_approx_eq(travelled.qty, 3.0));
        assert_eq!(travelled.path, vec![v(1), v(2), v(0), v(1)]);
        assert_eq!(travelled.hops(), 3);
        let newborn = at_v2
            .iter()
            .find(|e| e.birth == Timestamp::new(5.0))
            .unwrap();
        assert_eq!(newborn.origin, v(1));
        assert!(qty_approx_eq(newborn.qty, 4.0));
        assert_eq!(newborn.path, vec![v(1)]);
        // Interaction 5 (v2→v1, q=2) under LRB splits the oldest triple
        // (birth 1): 2 units travel on, 1 unit stays with the original path.
        t.process(&rs[4]);
        let kept = t.sorted_elements(v(2));
        let kept_old = kept
            .iter()
            .find(|e| e.birth == Timestamp::new(1.0))
            .unwrap();
        assert!(qty_approx_eq(kept_old.qty, 1.0));
        assert_eq!(kept_old.path, vec![v(1), v(2), v(0), v(1)]);
        let moved = t.sorted_elements(v(1));
        assert_eq!(moved.len(), 1);
        assert!(qty_approx_eq(moved[0].qty, 2.0));
        assert_eq!(moved[0].path, vec![v(1), v(2), v(0), v(1), v(2)]);
    }

    #[test]
    fn mrb_prefers_newest_for_transfer() {
        // Two generations buffered at vertex 0, then a partial transfer.
        let mut t = GenerationPathTracker::most_recently_born(3);
        t.process(&Interaction::new(1u32, 0u32, 1.0, 5.0)); // newborn at v1, t=1
        t.process(&Interaction::new(2u32, 0u32, 2.0, 5.0)); // newborn at v2, t=2
        t.process(&Interaction::new(0u32, 1u32, 3.0, 4.0)); // transfer 4 of 10
                                                            // MRB ships the t=2 units first.
        let at_v1 = t.sorted_elements(v(1));
        assert_eq!(at_v1.len(), 1);
        assert_eq!(at_v1[0].origin, v(2));
        assert!(qty_approx_eq(at_v1[0].qty, 4.0));
        assert_eq!(at_v1[0].path, vec![v(2), v(0)]);
        // 1 unit of the t=2 generation and all 5 of the t=1 generation remain.
        let at_v0 = t.sorted_elements(v(0));
        assert_eq!(at_v0.len(), 2);
        assert!(qty_approx_eq(t.buffered(v(0)), 6.0));
    }

    #[test]
    fn long_chain_grows_paths_and_footprint() {
        let n = 12u32;
        let mut t = GenerationPathTracker::least_recently_born(n as usize);
        for i in 0..n - 1 {
            t.process(&Interaction::new(i, i + 1, i as f64 + 1.0, 2.0));
        }
        let last = t.sorted_elements(v(n - 1));
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].origin, v(0));
        assert_eq!(last[0].hops(), (n - 2) as usize);
        let fp = t.footprint();
        assert!(fp.entries_bytes > 0);
        assert!(fp.paths_bytes > 0);
        assert_eq!(
            fp.total(),
            fp.entries_bytes + fp.paths_bytes + fp.index_bytes
        );
        assert!(t.average_path_length() > 1.0);
    }

    #[test]
    fn invariants_names_and_accessors() {
        let mut t = GenerationPathTracker::least_recently_born(3);
        t.process_all(&paper_running_example());
        assert!(t.check_all_invariants());
        assert_eq!(t.name(), "Least Recently Born + paths");
        assert_eq!(
            GenerationPathTracker::most_recently_born(1).name(),
            "Most Recently Born + paths"
        );
        assert_eq!(t.kind(), HeapKind::LeastRecentlyBorn);
        assert_eq!(t.interactions_processed(), 6);
        assert!(t.total_elements() > 0);
        assert!(!t.elements(v(2)).is_empty());
        assert_eq!(
            GenerationPathTracker::least_recently_born(2).average_path_length(),
            0.0
        );
    }

    #[test]
    fn zero_quantity_elements_are_dropped() {
        let mut buf = PathHeapBuffer::new();
        buf.push(
            HeapKind::LeastRecentlyBorn,
            PathTriple {
                origin: v(0),
                birth: Timestamp::new(1.0),
                qty: 0.0,
                path: vec![v(0)],
            },
        );
        assert!(buf.heap.is_empty());
        assert_eq!(buf.total, 0.0);
    }
}
