//! Windowed proportional provenance (Section 5.3.1).
//!
//! Full proportional provenance over an unbounded history is infeasible for
//! large graphs, so this tracker limits the scope to a sliding window of `W`
//! interactions. Each vertex keeps *two* sparse provenance vectors, `p_odd`
//! and `p_even`. Both are updated at every interaction; whenever the number of
//! processed interactions reaches an odd multiple of `W` every `p_odd` is
//! reset to the single entry `(α, |B_v|)` ("unknown provenance"), and at even
//! multiples every `p_even` is reset. Queries read whichever vector was least
//! recently reset, which guarantees provenance for quantities born between
//! `W` and `2W` interactions ago.

use crate::adaptive_vec::ProvenanceVec;
use crate::error::{Result, TinError};
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint, SpikeMonitor};
use crate::origins::OriginSet;
use crate::quantity::{qty_clamp_non_negative, qty_ge, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: both vector families plus
/// the scalar total.
pub struct TakenState {
    odd: ProvenanceVec,
    even: ProvenanceVec,
    total: Quantity,
}

/// Which of the two per-vertex vectors a query should read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActiveVector {
    Odd,
    Even,
}

/// Proportional provenance limited to a window of the last `W`–`2W`
/// interactions.
#[derive(Clone, Debug)]
pub struct WindowedTracker {
    window: usize,
    odd: Vec<ProvenanceVec>,
    even: Vec<ProvenanceVec>,
    totals: Vec<Quantity>,
    processed: usize,
    /// How many window resets have happened so far.
    resets: usize,
    monitor: Option<SpikeMonitor>,
}

impl WindowedTracker {
    /// Create a tracker with window length `window` (in interactions).
    ///
    /// # Errors
    /// Returns an error if `window` is zero.
    pub fn new(num_vertices: usize, window: usize) -> Result<Self> {
        if window == 0 {
            return Err(TinError::InvalidConfig(
                "window length must be at least 1 interaction".into(),
            ));
        }
        Ok(WindowedTracker {
            window,
            odd: (0..num_vertices).map(|_| ProvenanceVec::new()).collect(),
            even: (0..num_vertices).map(|_| ProvenanceVec::new()).collect(),
            totals: vec![0.0; num_vertices],
            processed: 0,
            resets: 0,
            monitor: None,
        })
    }

    /// Fire one window reset: clear whichever vector family's turn it is to
    /// the single entry `(α, |B_v|)` at every vertex (Figure 4).
    fn fire_reset(&mut self) {
        self.resets += 1;
        let targets = if self.resets % 2 == 1 {
            &mut self.odd
        } else {
            &mut self.even
        };
        for (v, vec) in targets.iter_mut().enumerate() {
            vec.reset_to_unknown(self.totals[v]);
        }
        if let Some(monitor) = &mut self.monitor {
            // A reset rewrites every vector of one family; re-basing the
            // estimate costs O(|V|), same as the reset itself.
            let estimate: usize = self
                .odd
                .iter()
                .chain(self.even.iter())
                .map(|p| p.footprint_bytes())
                .sum();
            monitor.set_estimate(estimate);
        }
    }

    /// The window length W.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of resets performed so far.
    pub fn resets(&self) -> usize {
        self.resets
    }

    /// Which vector currently answers queries: the one that was *least*
    /// recently reset.
    fn active(&self) -> ActiveVector {
        // resets = number of resets so far; reset #1 clears the odd vectors,
        // #2 the even vectors, #3 the odd vectors, ... After an odd number of
        // resets the odd vectors were cleared most recently → read even.
        if self.resets % 2 == 1 {
            ActiveVector::Even
        } else {
            ActiveVector::Odd
        }
    }

    /// Guaranteed provenance horizon: quantities born within this many
    /// interactions before "now" have exact provenance (between W and 2W).
    pub fn guaranteed_horizon(&self) -> usize {
        let since_reset = self.processed % self.window;
        self.window + since_reset
    }

    fn apply(vectors: &mut [ProvenanceVec], totals: &[Quantity], r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        let (src_vec, dst_vec) = split_src_dst(vectors, s, d);
        let src_total = totals[s];
        if qty_ge(r.qty, src_total) {
            dst_vec.take_all_from(src_vec);
            let newborn = qty_clamp_non_negative(r.qty - src_total);
            if newborn > 0.0 {
                dst_vec.add_vertex(r.src, newborn);
            }
        } else {
            let factor = r.qty / src_total;
            dst_vec.transfer_from(src_vec, factor);
        }
    }
}

impl ProvenanceTracker for WindowedTracker {
    fn name(&self) -> &'static str {
        "Windowed proportional"
    }

    fn num_vertices(&self) -> usize {
        self.totals.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");
        let fp_before = if self.monitor.is_some() {
            self.odd[s].footprint_bytes()
                + self.odd[d].footprint_bytes()
                + self.even[s].footprint_bytes()
                + self.even[d].footprint_bytes()
        } else {
            0
        };

        // Both vector families are updated at every interaction.
        Self::apply(&mut self.odd, &self.totals, r);
        Self::apply(&mut self.even, &self.totals, r);

        // Update the scalar totals once.
        let src_total = self.totals[s];
        if qty_ge(r.qty, src_total) {
            self.totals[s] = 0.0;
        } else {
            self.totals[s] = qty_clamp_non_negative(src_total - r.qty);
        }
        self.totals[d] += r.qty;
        self.processed += 1;
        if let Some(monitor) = &mut self.monitor {
            let fp_after = self.odd[s].footprint_bytes()
                + self.odd[d].footprint_bytes()
                + self.even[s].footprint_bytes()
                + self.even[d].footprint_bytes();
            monitor.apply_delta(fp_after as isize - fp_before as isize);
        }

        // Reset at multiples of W (Figure 4).
        if self.processed.is_multiple_of(self.window) {
            self.fire_reset();
        }
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.totals[v.index()]
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        let vec = match self.active() {
            ActiveVector::Odd => &self.odd[v.index()],
            ActiveVector::Even => &self.even[v.index()],
        };
        vec.to_origin_set()
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self
                .odd
                .iter()
                .chain(self.even.iter())
                .map(|p| p.footprint_bytes())
                .sum(),
            paths_bytes: 0,
            index_bytes: crate::memory::vec_bytes(&self.totals)
                + std::mem::size_of::<ProvenanceVec>()
                    * (self.odd.capacity() + self.even.capacity()),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();

    fn sync_epoch(&mut self, processed: usize, _now: f64) {
        // A shard replica may have processed only a subset of the stream; the
        // reset schedule is keyed to the *global* interaction count, so jump
        // the clock forward and fire every window boundary crossed on the
        // way. Resets already fired locally (a replica whose own counter hit
        // the boundary) are not fired twice: `resets == processed / window`
        // is an invariant on both paths.
        if processed <= self.processed {
            return;
        }
        let due = processed / self.window;
        while self.resets < due {
            self.fire_reset();
        }
        self.processed = processed;
    }

    crate::impl_spike_monitor_hooks!();
}

impl MigratableTracker for WindowedTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            odd: std::mem::take(&mut self.odd[i]),
            even: std::mem::take(&mut self.even[i]),
            total: std::mem::take(&mut self.totals[i]),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        let i = v.index();
        self.odd[i] = taken.odd;
        self.even[i] = taken.even;
        self.totals[i] = taken.total;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.odd.encode_into(out);
        taken.even.encode_into(out);
        crate::codec::put_f64(out, taken.total);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            odd: ProvenanceVec::decode_from(r)?,
            even: ProvenanceVec::decode_from(r)?,
            total: r.f64()?,
        })
    }

    // Migrating state carries its footprint with it (see
    // `ProportionalSparseTracker`).
    fn taken_footprint(taken: &TakenState) -> usize {
        taken.odd.footprint_bytes() + taken.even.footprint_bytes()
    }

    fn monitor_store(&mut self) -> Option<&mut Option<SpikeMonitor>> {
        Some(&mut self.monitor)
    }

    fn footprint_estimate(&self) -> usize {
        self.odd
            .iter()
            .chain(self.even.iter())
            .map(|p| p.footprint_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Origin;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::proportional_sparse::ProportionalSparseTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn rejects_zero_window() {
        assert!(WindowedTracker::new(3, 0).is_err());
    }

    #[test]
    fn huge_window_matches_unwindowed_proportional() {
        // If W exceeds the stream length no reset ever fires, so the result
        // is exactly proportional sparse tracking.
        let mut windowed = WindowedTracker::new(3, 1000).unwrap();
        let mut exact = ProportionalSparseTracker::new(3);
        for r in paper_running_example() {
            windowed.process(&r);
            exact.process(&r);
        }
        assert_eq!(windowed.resets(), 0);
        for i in 0..3u32 {
            assert!(qty_approx_eq(windowed.buffered(v(i)), exact.buffered(v(i))));
            assert!(windowed.origins(v(i)).approx_eq(&exact.origins(v(i))));
        }
    }

    #[test]
    fn totals_are_never_affected_by_resets() {
        use crate::tracker::no_prov::NoProvTracker;
        let mut windowed = WindowedTracker::new(3, 2).unwrap();
        let mut baseline = NoProvTracker::new(3);
        for r in paper_running_example() {
            windowed.process(&r);
            baseline.process(&r);
            for i in 0..3u32 {
                assert!(qty_approx_eq(
                    windowed.buffered(v(i)),
                    baseline.buffered(v(i))
                ));
            }
        }
    }

    #[test]
    fn resets_fire_every_window() {
        let mut t = WindowedTracker::new(3, 2).unwrap();
        t.process_all(&paper_running_example());
        // 6 interactions, W = 2 -> resets after #2, #4, #6.
        assert_eq!(t.resets(), 3);
        assert_eq!(t.window(), 2);
    }

    #[test]
    fn origin_invariant_holds_with_alpha_entries() {
        let mut t = WindowedTracker::new(3, 2).unwrap();
        for r in paper_running_example() {
            t.process(&r);
            assert!(t.check_all_invariants());
        }
        // After resets, some provenance must have been forgotten (attributed
        // to α) at at least one vertex.
        let total_unknown: f64 = (0..3u32)
            .map(|i| t.origins(v(i)).quantity_from(Origin::Unknown))
            .sum();
        assert!(total_unknown > 0.0);
    }

    #[test]
    fn recent_quantities_keep_exact_provenance() {
        // W = 3: after 6 interactions the active vector was reset at
        // interaction 3, so quantities born after interaction 3 must still
        // have concrete origins.
        let mut t = WindowedTracker::new(3, 3).unwrap();
        t.process_all(&paper_running_example());
        // Interaction 4 (v1→v2, q=7) generates 4 newborn units at v1 which
        // remain (partially) at v2: their origin must still be known.
        let o2 = t.origins(v(2));
        assert!(o2.quantity_from_vertex(v(1)) > 0.0);
    }

    #[test]
    fn guaranteed_horizon_bounds() {
        let mut t = WindowedTracker::new(3, 4).unwrap();
        assert_eq!(t.guaranteed_horizon(), 4);
        for r in paper_running_example() {
            t.process(&r);
            let h = t.guaranteed_horizon();
            assert!((4..8).contains(&h), "horizon {h} outside [W, 2W)");
        }
    }

    #[test]
    fn memory_is_bounded_by_resets() {
        // With a small window, provenance lists cannot keep growing: after a
        // reset the cleared family is a single α entry per vertex.
        let mut small = WindowedTracker::new(3, 1).unwrap();
        let mut large = WindowedTracker::new(3, 1000).unwrap();
        for r in paper_running_example() {
            small.process(&r);
            large.process(&r);
        }
        assert!(small.footprint().entries_bytes <= large.footprint().entries_bytes);
    }

    #[test]
    fn name() {
        assert_eq!(
            WindowedTracker::new(1, 1).unwrap().name(),
            "Windowed proportional"
        );
    }
}
