//! Budget-based proportional provenance (Section 5.3.2).
//!
//! Each vertex is allocated a maximum capacity `C` for its sparse provenance
//! list `p_v`. Whenever an update would leave more than `C` entries, the list
//! is *shrunk*: only a fraction `f` of the budget (`⌊f·C⌋` entries) survives,
//! chosen by a configurable criterion, and the removed entries' total quantity
//! is attributed to the artificial vertex α. Space becomes `O(|V|·C)` at the
//! cost of some provenance information loss, which the paper quantifies with
//! the shrink statistics of Table 9.

use std::collections::BTreeSet;

use crate::adaptive_vec::ProvenanceVec;
use crate::error::{Result, TinError};
use crate::ids::{Origin, VertexId};
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint, SpikeMonitor};
use crate::origins::OriginSet;
use crate::policy::ShrinkCriterion;
use crate::quantity::{qty_clamp_non_negative, qty_ge, qty_is_zero, Quantity};
use crate::sparse_vec::{MergeScratch, SparseProvenance};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the provenance list, the
/// scalar total, and the vertex's shrink counter.
pub struct TakenState {
    vec: ProvenanceVec,
    total: Quantity,
    shrinks: u32,
}

/// Aggregate shrink statistics, mirroring Table 9 of the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShrinkStats {
    /// Average number of shrinks per vertex with a non-empty buffer
    /// ("avg. shrinks" column).
    pub avg_shrinks_per_nonempty_vertex: f64,
    /// Percentage (0–100) of vertices with a non-empty buffer whose list was
    /// shrunk at least once ("% vertices" column).
    pub pct_vertices_shrunk: f64,
    /// Total number of shrink operations performed.
    pub total_shrinks: u64,
    /// Number of vertices with a non-empty buffer.
    pub nonempty_vertices: usize,
}

/// Proportional provenance with a per-vertex budget of `C` list entries.
#[derive(Clone, Debug)]
pub struct BudgetTracker {
    capacity: usize,
    keep: usize,
    criterion: ShrinkCriterion,
    important: BTreeSet<Origin>,
    vectors: Vec<ProvenanceVec>,
    totals: Vec<Quantity>,
    shrinks: Vec<u32>,
    scratch: MergeScratch,
    processed: usize,
    monitor: Option<SpikeMonitor>,
}

impl BudgetTracker {
    /// Create a tracker with budget `capacity` and keep fraction
    /// `keep_fraction` (the paper suggests 0.6–0.8) under the default
    /// keep-largest criterion.
    pub fn new(num_vertices: usize, capacity: usize, keep_fraction: f64) -> Result<Self> {
        Self::with_criterion(
            num_vertices,
            capacity,
            keep_fraction,
            ShrinkCriterion::KeepLargest,
            Vec::new(),
        )
    }

    /// Create a tracker with an explicit shrink criterion. `important` lists
    /// the origin vertices that survive shrinking under
    /// [`ShrinkCriterion::KeepImportant`].
    pub fn with_criterion(
        num_vertices: usize,
        capacity: usize,
        keep_fraction: f64,
        criterion: ShrinkCriterion,
        important: Vec<VertexId>,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(TinError::InvalidConfig(
                "provenance budget C must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&keep_fraction) || keep_fraction <= 0.0 {
            return Err(TinError::InvalidConfig(format!(
                "keep fraction f must be in (0, 1], got {keep_fraction}"
            )));
        }
        let keep = ((capacity as f64 * keep_fraction).floor() as usize).max(1);
        Ok(BudgetTracker {
            capacity,
            keep,
            criterion,
            important: important.into_iter().map(Origin::Vertex).collect(),
            vectors: (0..num_vertices).map(|_| ProvenanceVec::new()).collect(),
            totals: vec![0.0; num_vertices],
            shrinks: vec![0; num_vertices],
            scratch: MergeScratch::new(),
            processed: 0,
            monitor: None,
        })
    }

    /// The budget C.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of entries kept after a shrink (`⌊f·C⌋`).
    pub fn keep_count(&self) -> usize {
        self.keep
    }

    /// Per-vertex shrink counters.
    pub fn shrinks_per_vertex(&self) -> &[u32] {
        &self.shrinks
    }

    /// Aggregate shrink statistics over vertices with non-empty buffers
    /// (Table 9).
    pub fn shrink_stats(&self) -> ShrinkStats {
        let mut nonempty = 0usize;
        let mut shrunk_at_least_once = 0usize;
        let mut shrinks_on_nonempty = 0u64;
        for (i, total) in self.totals.iter().enumerate() {
            if !qty_is_zero(*total) {
                nonempty += 1;
                shrinks_on_nonempty += u64::from(self.shrinks[i]);
                if self.shrinks[i] > 0 {
                    shrunk_at_least_once += 1;
                }
            }
        }
        let total_shrinks: u64 = self.shrinks.iter().map(|&x| u64::from(x)).sum();
        ShrinkStats {
            avg_shrinks_per_nonempty_vertex: if nonempty == 0 {
                0.0
            } else {
                shrinks_on_nonempty as f64 / nonempty as f64
            },
            pct_vertices_shrunk: if nonempty == 0 {
                0.0
            } else {
                100.0 * shrunk_at_least_once as f64 / nonempty as f64
            },
            total_shrinks,
            nonempty_vertices: nonempty,
        }
    }

    /// Direct read access to the provenance list of `v`.
    pub fn vector(&self, v: VertexId) -> &ProvenanceVec {
        &self.vectors[v.index()]
    }

    /// Shrink the list of vertex `vertex_index` if it exceeds the budget.
    fn enforce_budget(&mut self, vertex_index: usize) {
        let vec = &mut self.vectors[vertex_index];
        if vec.len() <= self.capacity {
            return;
        }
        match self.criterion {
            ShrinkCriterion::KeepLargest => {
                vec.shrink_keep_largest_with(self.keep, &mut self.scratch);
            }
            ShrinkCriterion::KeepImportant => {
                // Keep important origins first (largest-quantity first within
                // the class), then fill up with the largest remaining entries.
                // Cold path: shrinks are rare relative to interactions, so
                // the allocating collect/rebuild is fine here.
                let mut entries: Vec<(Origin, Quantity)> = vec.collect_entries();
                entries.sort_by(|a, b| {
                    let a_imp = self.important.contains(&a.0) || a.0 == Origin::Unknown;
                    let b_imp = self.important.contains(&b.0) || b.0 == Origin::Unknown;
                    b_imp
                        .cmp(&a_imp)
                        .then(b.1.total_cmp(&a.1))
                        .then(a.0.cmp(&b.0))
                });
                let (kept, removed) = entries.split_at(self.keep.min(entries.len()));
                let removed_total: Quantity = removed.iter().map(|(_, q)| *q).sum();
                let mut rebuilt: SparseProvenance = kept.iter().copied().collect();
                if !qty_is_zero(removed_total) {
                    rebuilt.add(Origin::Unknown, removed_total);
                }
                *vec = ProvenanceVec::from_sparse(rebuilt);
            }
        }
        self.shrinks[vertex_index] += 1;
    }
}

impl ProvenanceTracker for BudgetTracker {
    fn name(&self) -> &'static str {
        "Budget-based proportional"
    }

    fn num_vertices(&self) -> usize {
        self.totals.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");
        let fp_before = if self.monitor.is_some() {
            self.vectors[s].footprint_bytes() + self.vectors[d].footprint_bytes()
        } else {
            0
        };

        {
            let (src_vec, dst_vec) = split_src_dst(&mut self.vectors, s, d);
            let src_total = self.totals[s];
            if qty_ge(r.qty, src_total) {
                dst_vec.take_all_from(src_vec);
                let newborn = qty_clamp_non_negative(r.qty - src_total);
                if newborn > 0.0 {
                    dst_vec.add_vertex(r.src, newborn);
                }
                self.totals[d] += r.qty;
                self.totals[s] = 0.0;
            } else {
                let factor = r.qty / src_total;
                dst_vec.transfer_from(src_vec, factor);
                self.totals[d] += r.qty;
                self.totals[s] = qty_clamp_non_negative(src_total - r.qty);
            }
        }
        // Only the destination list can have grown beyond the budget.
        self.enforce_budget(d);
        if let Some(monitor) = &mut self.monitor {
            let fp_after = self.vectors[s].footprint_bytes() + self.vectors[d].footprint_bytes();
            monitor.apply_delta(fp_after as isize - fp_before as isize);
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.totals[v.index()]
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        self.vectors[v.index()].to_origin_set()
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.vectors.iter().map(|p| p.footprint_bytes()).sum(),
            paths_bytes: 0,
            index_bytes: crate::memory::vec_bytes(&self.totals)
                + crate::memory::vec_bytes(&self.shrinks)
                + std::mem::size_of::<ProvenanceVec>() * self.vectors.capacity()
                + self.scratch.footprint_bytes(),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
    crate::impl_spike_monitor_hooks!();
}

impl MigratableTracker for BudgetTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            vec: std::mem::take(&mut self.vectors[i]),
            total: std::mem::take(&mut self.totals[i]),
            shrinks: std::mem::take(&mut self.shrinks[i]),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        let i = v.index();
        self.vectors[i] = taken.vec;
        self.totals[i] = taken.total;
        self.shrinks[i] = taken.shrinks;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.vec.encode_into(out);
        crate::codec::put_f64(out, taken.total);
        crate::codec::put_u32(out, taken.shrinks);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            vec: ProvenanceVec::decode_from(r)?,
            total: r.f64()?,
            shrinks: r.u32()?,
        })
    }

    // Migrating state carries its footprint with it (see
    // `ProportionalSparseTracker`).
    fn taken_footprint(taken: &TakenState) -> usize {
        taken.vec.footprint_bytes()
    }

    fn monitor_store(&mut self) -> Option<&mut Option<SpikeMonitor>> {
        Some(&mut self.monitor)
    }

    fn footprint_estimate(&self) -> usize {
        self.vectors.iter().map(|p| p.footprint_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::proportional_sparse::ProportionalSparseTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(BudgetTracker::new(3, 0, 0.7).is_err());
        assert!(BudgetTracker::new(3, 10, 0.0).is_err());
        assert!(BudgetTracker::new(3, 10, 1.5).is_err());
    }

    #[test]
    fn keep_count_is_floor_of_fraction() {
        let t = BudgetTracker::new(3, 10, 0.65).unwrap();
        assert_eq!(t.capacity(), 10);
        assert_eq!(t.keep_count(), 6);
        // Tiny budgets keep at least one entry.
        assert_eq!(BudgetTracker::new(3, 1, 0.5).unwrap().keep_count(), 1);
    }

    #[test]
    fn large_budget_matches_exact_proportional() {
        let mut budget = BudgetTracker::new(3, 100, 0.7).unwrap();
        let mut exact = ProportionalSparseTracker::new(3);
        for r in paper_running_example() {
            budget.process(&r);
            exact.process(&r);
        }
        assert_eq!(budget.shrink_stats().total_shrinks, 0);
        for i in 0..3u32 {
            assert!(qty_approx_eq(budget.buffered(v(i)), exact.buffered(v(i))));
            assert!(budget.origins(v(i)).approx_eq(&exact.origins(v(i))));
        }
    }

    #[test]
    fn totals_unaffected_by_shrinking() {
        use crate::tracker::no_prov::NoProvTracker;
        let mut budget = BudgetTracker::new(3, 1, 1.0).unwrap();
        let mut baseline = NoProvTracker::new(3);
        for r in paper_running_example() {
            budget.process(&r);
            baseline.process(&r);
            for i in 0..3u32 {
                assert!(qty_approx_eq(
                    budget.buffered(v(i)),
                    baseline.buffered(v(i))
                ));
            }
            assert!(budget.check_all_invariants());
        }
    }

    #[test]
    fn shrinking_caps_list_length() {
        // Feed one hub from many distinct generators; the hub's list must
        // never exceed C (+1 for the α entry right after a shrink fold).
        let c = 5;
        let mut t = BudgetTracker::new(50, c, 0.6).unwrap();
        for i in 1..50u32 {
            t.process(&Interaction::new(i, 0u32, i as f64, 1.0));
            assert!(
                t.vector(v(0)).len() <= c + 1,
                "list length {} exceeded budget {}",
                t.vector(v(0)).len(),
                c
            );
        }
        let stats = t.shrink_stats();
        assert!(stats.total_shrinks > 0);
        assert!(stats.pct_vertices_shrunk > 0.0);
        // Shrunk provenance shows up as α.
        assert!(t.origins(v(0)).quantity_from(Origin::Unknown) > 0.0);
        assert!(t.check_all_invariants());
    }

    #[test]
    fn keep_largest_retains_dominant_origins() {
        let mut t = BudgetTracker::new(10, 3, 0.67).unwrap();
        // Origin 1 contributes a large quantity, origins 2..=6 small ones.
        t.process(&Interaction::new(1u32, 0u32, 1.0, 100.0));
        for i in 2..=6u32 {
            t.process(&Interaction::new(i, 0u32, i as f64, 1.0));
        }
        let o = t.origins(v(0));
        assert!(o.quantity_from_vertex(v(1)) >= 100.0 - 1e-6);
        assert!(o.quantity_from(Origin::Unknown) > 0.0);
    }

    #[test]
    fn keep_important_retains_designated_origins() {
        let mut t =
            BudgetTracker::with_criterion(10, 3, 0.67, ShrinkCriterion::KeepImportant, vec![v(5)])
                .unwrap();
        // v5 contributes a *small* quantity early; larger quantities follow.
        t.process(&Interaction::new(5u32, 0u32, 1.0, 0.5));
        for i in 1..5u32 {
            t.process(&Interaction::new(i, 0u32, 1.0 + i as f64, 10.0 * i as f64));
        }
        let o = t.origins(v(0));
        // The important origin survives shrinking despite its small quantity.
        assert!(qty_approx_eq(o.quantity_from_vertex(v(5)), 0.5));
        assert!(t.shrink_stats().total_shrinks > 0);
    }

    #[test]
    fn shrink_stats_shape() {
        let mut t = BudgetTracker::new(4, 1, 1.0).unwrap();
        t.process_all(&paper_running_example());
        let stats = t.shrink_stats();
        assert!(stats.nonempty_vertices > 0);
        assert!(stats.pct_vertices_shrunk >= 0.0 && stats.pct_vertices_shrunk <= 100.0);
        assert!(stats.avg_shrinks_per_nonempty_vertex >= 0.0);
        // Empty tracker -> zeroed stats.
        let empty = BudgetTracker::new(4, 1, 1.0).unwrap();
        assert_eq!(empty.shrink_stats(), ShrinkStats::default());
    }

    #[test]
    fn larger_budget_means_fewer_shrinks() {
        let rs: Vec<Interaction> = (1..40u32)
            .map(|i| Interaction::new(i, 0u32, i as f64, 1.0))
            .collect();
        let mut tight = BudgetTracker::new(40, 4, 0.7).unwrap();
        let mut loose = BudgetTracker::new(40, 20, 0.7).unwrap();
        tight.process_all(&rs);
        loose.process_all(&rs);
        assert!(tight.shrink_stats().total_shrinks > loose.shrink_stats().total_shrinks);
    }

    #[test]
    fn footprint_bounded_by_budget() {
        let rs: Vec<Interaction> = (1..100u32)
            .map(|i| Interaction::new(i, 0u32, i as f64, 1.0))
            .collect();
        let mut tight = BudgetTracker::new(100, 4, 0.7).unwrap();
        let mut exact = ProportionalSparseTracker::new(100);
        tight.process_all(&rs);
        exact.process_all(&rs);
        assert!(tight.footprint().entries_bytes < exact.footprint().entries_bytes);
    }

    #[test]
    fn name() {
        assert_eq!(
            BudgetTracker::new(1, 1, 1.0).unwrap().name(),
            "Budget-based proportional"
        );
    }
}
