//! Proportional selection with dense provenance vectors
//! (Section 4.3, Algorithm 3).
//!
//! Every vertex `v` carries a `|V|`-length vector `p_v`; slot `i` holds the
//! quantity in `B_v` that originates from vertex `i`. An interaction either
//! relays the whole source vector (plus a newborn one-hot component) or moves
//! a proportional fraction of every slot. Space is `O(|V|²)` and each
//! interaction costs `O(|V|)`, which is why the paper can only run this
//! variant on the small-vertex-count datasets (Flights, Taxis).

use crate::dense_vec::DenseProvenance;
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint};
use crate::origins::OriginSet;
use crate::quantity::{qty_clamp_non_negative, qty_ge, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the dense row (its `Vec`
/// allocation moves wholesale) plus the scalar total.
pub struct TakenState {
    row: DenseProvenance,
    total: Quantity,
}

/// Algorithm 3: proportional provenance with dense `|V|`-length vectors.
#[derive(Clone, Debug)]
pub struct ProportionalDenseTracker {
    vectors: Vec<DenseProvenance>,
    /// Scalar buffered totals, kept separately so `|B_v|` is O(1) instead of
    /// an O(|V|) vector sum.
    totals: Vec<Quantity>,
    processed: usize,
}

impl ProportionalDenseTracker {
    /// Create a tracker for `num_vertices` vertices
    /// (allocates `num_vertices²` slots).
    pub fn new(num_vertices: usize) -> Self {
        ProportionalDenseTracker {
            vectors: (0..num_vertices)
                .map(|_| DenseProvenance::zeros(num_vertices))
                .collect(),
            totals: vec![0.0; num_vertices],
            processed: 0,
        }
    }

    /// Direct read access to the provenance vector of `v` (Table 5 tests).
    pub fn vector(&self, v: VertexId) -> &DenseProvenance {
        &self.vectors[v.index()]
    }
}

impl ProvenanceTracker for ProportionalDenseTracker {
    fn name(&self) -> &'static str {
        "Proportional (dense)"
    }

    fn num_vertices(&self) -> usize {
        self.vectors.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");

        let (src_vec, dst_vec) = split_src_dst(&mut self.vectors, s, d);

        let src_total = self.totals[s];
        if qty_ge(r.qty, src_total) {
            // Case 1 (Algorithm 3, lines 5–7): the whole source buffer is
            // relayed, plus a newborn quantity r.q − |B_{r.s}| at r.s.
            src_vec.drain_into(dst_vec);
            let newborn = qty_clamp_non_negative(r.qty - src_total);
            if newborn > 0.0 {
                dst_vec.add_at(s, newborn);
            }
            self.totals[d] += r.qty;
            self.totals[s] = 0.0;
        } else {
            // Case 2 (lines 8–10): transfer the fraction r.q / |B_{r.s}| of
            // every component.
            let factor = r.qty / src_total;
            src_vec.transfer_fraction(dst_vec, factor);
            self.totals[d] += r.qty;
            self.totals[s] = qty_clamp_non_negative(src_total - r.qty);
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.totals[v.index()]
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        OriginSet::from_vertex_pairs(
            self.vectors[v.index()]
                .nonzero()
                .map(|(i, q)| (VertexId::from(i), q)),
        )
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.vectors.iter().map(|p| p.footprint_bytes()).sum(),
            paths_bytes: 0,
            index_bytes: crate::memory::vec_bytes(&self.totals),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
}

impl MigratableTracker for ProportionalDenseTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            row: std::mem::replace(&mut self.vectors[i], DenseProvenance::zeros(0)),
            total: std::mem::take(&mut self.totals[i]),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        let i = v.index();
        self.vectors[i] = taken.row;
        self.totals[i] = taken.total;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.row.encode_into(out);
        crate::codec::put_f64(out, taken.total);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            row: DenseProvenance::decode_from(r)?,
            total: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn assert_vector(t: &ProportionalDenseTracker, vertex: u32, expected: &[f64]) {
        let p = t.vector(v(vertex));
        assert_eq!(p.dim(), expected.len());
        for (i, &want) in expected.iter().enumerate() {
            assert!(
                (p.get(i) - want).abs() < 0.01,
                "p_v{vertex}[{i}] = {} want {}",
                p.get(i),
                want
            );
        }
    }

    /// Reproduces Table 5 of the paper step by step (proportional selection).
    /// The expected values are the paper's, rounded to two decimals.
    #[test]
    fn table5_proportional_vectors() {
        let rs = paper_running_example();
        let mut t = ProportionalDenseTracker::new(3);

        t.process(&rs[0]);
        assert_vector(&t, 0, &[0.0, 0.0, 0.0]);
        assert_vector(&t, 1, &[0.0, 0.0, 0.0]);
        assert_vector(&t, 2, &[0.0, 3.0, 0.0]);

        t.process(&rs[1]);
        assert_vector(&t, 0, &[0.0, 3.0, 2.0]);
        assert_vector(&t, 2, &[0.0, 0.0, 0.0]);

        t.process(&rs[2]);
        assert_vector(&t, 0, &[0.0, 1.2, 0.8]);
        assert_vector(&t, 1, &[0.0, 1.8, 1.2]);

        t.process(&rs[3]);
        assert_vector(&t, 1, &[0.0, 0.0, 0.0]);
        assert_vector(&t, 2, &[0.0, 5.8, 1.2]);

        t.process(&rs[4]);
        assert_vector(&t, 1, &[0.0, 1.66, 0.34]);
        assert_vector(&t, 2, &[0.0, 4.14, 0.86]);

        t.process(&rs[5]);
        assert_vector(&t, 0, &[0.0, 2.03, 0.97]);
        assert_vector(&t, 1, &[0.0, 1.66, 0.34]);
        assert_vector(&t, 2, &[0.0, 3.31, 0.69]);

        assert!(t.check_all_invariants());
    }

    #[test]
    fn totals_match_noprov() {
        use crate::tracker::no_prov::NoProvTracker;
        let mut a = ProportionalDenseTracker::new(3);
        let mut b = NoProvTracker::new(3);
        for r in paper_running_example() {
            a.process(&r);
            b.process(&r);
            for i in 0..3 {
                assert!(qty_approx_eq(a.buffered(v(i)), b.buffered(v(i))));
            }
        }
    }

    #[test]
    fn origins_from_vector() {
        let mut t = ProportionalDenseTracker::new(3);
        t.process_all(&paper_running_example());
        let o = t.origins(v(0));
        assert_eq!(o.len(), 2);
        assert!((o.quantity_from_vertex(v(1)) - 2.03).abs() < 0.01);
        assert!((o.quantity_from_vertex(v(2)) - 0.97).abs() < 0.01);
        assert!(qty_approx_eq(o.total(), t.buffered(v(0))));
    }

    #[test]
    fn full_relay_resets_source_vector() {
        let mut t = ProportionalDenseTracker::new(3);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 4.0));
        t.process(&Interaction::new(1u32, 2u32, 2.0, 10.0));
        // v1's buffer (4 from v0) relays entirely plus 6 newborn at v1.
        assert!(t.vector(v(1)).is_zero());
        assert!(qty_approx_eq(t.buffered(v(1)), 0.0));
        let o = t.origins(v(2));
        assert!(qty_approx_eq(o.quantity_from_vertex(v(0)), 4.0));
        assert!(qty_approx_eq(o.quantity_from_vertex(v(1)), 6.0));
    }

    #[test]
    fn exact_quantity_relay_generates_nothing() {
        let mut t = ProportionalDenseTracker::new(3);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 4.0));
        t.process(&Interaction::new(1u32, 2u32, 2.0, 4.0));
        let o = t.origins(v(2));
        assert_eq!(o.len(), 1);
        assert!(qty_approx_eq(o.quantity_from_vertex(v(0)), 4.0));
        assert!(qty_approx_eq(o.quantity_from_vertex(v(1)), 0.0));
    }

    #[test]
    fn global_conservation() {
        let mut t = ProportionalDenseTracker::new(3);
        let rs = paper_running_example();
        t.process_all(&rs);
        // Total buffered = total generated = 9 (from Table 2: 7 at v1, 2 at v2).
        assert!(qty_approx_eq(t.total_buffered(), 9.0));
    }

    #[test]
    fn footprint_is_quadratic_in_vertices() {
        let small = ProportionalDenseTracker::new(10);
        let big = ProportionalDenseTracker::new(100);
        let s = small.footprint().entries_bytes;
        let b = big.footprint().entries_bytes;
        // 100x the vertices -> 10_000x the vector slots.
        assert_eq!(s, 10 * 10 * 8);
        assert_eq!(b, 100 * 100 * 8);
    }

    #[test]
    fn name_and_counts() {
        let t = ProportionalDenseTracker::new(2);
        assert_eq!(t.name(), "Proportional (dense)");
        assert_eq!(t.num_vertices(), 2);
        assert_eq!(t.interactions_processed(), 0);
    }
}
