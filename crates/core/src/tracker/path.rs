//! Path tracking — *how*-provenance (Section 6).
//!
//! Besides the origin of every buffered quantity, this tracker records the
//! *route* each quantity element has followed through the network. Each
//! buffered element carries a transfer path: the sequence of vertices it has
//! visited, starting with its origin and extended with the transmitter vertex
//! every time the element is relayed. The underlying selection policy is a
//! receipt-order policy (the paper evaluates path tracking on top of LIFO in
//! Table 10; FIFO is supported too).
//!
//! Path tracking is *not* meaningful for proportional selection: fractions of
//! quantities from the same origin but different routes get mixed in the
//! provenance vectors and become indistinguishable (Section 6).

use std::collections::VecDeque;

use crate::buffer::queue_buffer::Discipline;
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::FootprintBreakdown;
use crate::origins::OriginSet;
use crate::quantity::{qty_gt, qty_is_zero, Quantity};
use crate::tracker::{split_src_dst, MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the whole path buffer
/// (elements, paths and receipt order move wholesale).
pub struct TakenState {
    buf: PathBuffer,
}

/// A buffered quantity element annotated with its transfer path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathElement {
    /// The vertex that generated this quantity.
    pub origin: VertexId,
    /// The quantity.
    pub qty: Quantity,
    /// The route followed so far: `path[0]` is the origin, each further entry
    /// is a vertex that relayed the element. The element's current holder is
    /// not part of the path.
    pub path: Vec<VertexId>,
}

impl PathElement {
    /// Number of relays after the element first left its origin
    /// (`path.len() - 1`); 0 for an element that went straight from its
    /// origin to its current holder. This is the "path length" averaged in
    /// Table 10.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Per-vertex buffer of path-annotated elements.
#[derive(Clone, Debug, Default)]
struct PathBuffer {
    elements: VecDeque<PathElement>,
    total: Quantity,
}

impl PathBuffer {
    fn push(&mut self, e: PathElement) {
        if qty_is_zero(e.qty) {
            return;
        }
        self.total += e.qty;
        self.elements.push_back(e);
    }

    /// Select up to `amount` under `discipline`, passing each transferred
    /// element (whole or split) to `sink` in selection order.
    fn take(
        &mut self,
        discipline: Discipline,
        amount: Quantity,
        mut sink: impl FnMut(PathElement),
    ) -> Quantity {
        let mut residue = amount;
        let mut taken = 0.0;
        while residue > 0.0 && !qty_is_zero(residue) && !self.elements.is_empty() {
            let top_qty = match discipline {
                Discipline::Fifo => self.elements.front().map(|e| e.qty),
                Discipline::Lifo => self.elements.back().map(|e| e.qty),
            }
            .unwrap_or(0.0);
            if qty_gt(top_qty, residue) {
                // Split: the moved fragment inherits the parent's path.
                let top = match discipline {
                    Discipline::Fifo => self.elements.front_mut(),
                    Discipline::Lifo => self.elements.back_mut(),
                }
                .expect("buffer non-empty: peeked above");
                top.qty -= residue;
                let fragment = PathElement {
                    origin: top.origin,
                    qty: residue,
                    path: top.path.clone(),
                };
                self.total -= residue;
                taken += residue;
                sink(fragment);
                residue = 0.0;
            } else {
                let e = match discipline {
                    Discipline::Fifo => self.elements.pop_front(),
                    Discipline::Lifo => self.elements.pop_back(),
                }
                .expect("buffer non-empty: peeked above");
                self.total -= e.qty;
                residue -= e.qty;
                taken += e.qty;
                sink(e);
            }
        }
        if self.elements.is_empty() {
            self.total = 0.0;
        }
        taken
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_f64, put_u32, put_usize};
        put_f64(out, self.total);
        put_usize(out, self.elements.len());
        for e in &self.elements {
            put_u32(out, e.origin.raw());
            put_f64(out, e.qty);
            put_usize(out, e.path.len());
            for p in &e.path {
                put_u32(out, p.raw());
            }
        }
    }

    fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        let total = r.f64()?;
        let len = r.usize()?;
        // Each element is ≥ 20 bytes (origin + qty + path length prefix).
        if r.remaining() < len.saturating_mul(20) {
            return Err(r.corrupt(format!("truncated: {len} path elements declared")));
        }
        let mut elements = VecDeque::with_capacity(len);
        for _ in 0..len {
            let origin = VertexId::new(r.u32()?);
            let qty = r.f64()?;
            let hops = r.usize()?;
            if r.remaining() < hops.saturating_mul(4) {
                return Err(r.corrupt(format!("truncated: path of {hops} hops declared")));
            }
            let mut path = Vec::with_capacity(hops);
            for _ in 0..hops {
                path.push(VertexId::new(r.u32()?));
            }
            elements.push_back(PathElement { origin, qty, path });
        }
        Ok(PathBuffer { elements, total })
    }

    fn entries_bytes(&self) -> usize {
        self.elements.capacity() * std::mem::size_of::<PathElement>()
    }

    fn paths_bytes(&self) -> usize {
        self.elements
            .iter()
            .map(|e| e.path.capacity() * std::mem::size_of::<VertexId>())
            .sum()
    }
}

/// Receipt-order provenance tracking extended with per-element transfer paths.
#[derive(Clone, Debug)]
pub struct PathTracker {
    discipline: Discipline,
    buffers: Vec<PathBuffer>,
    processed: usize,
}

impl PathTracker {
    /// Path tracking on top of the LIFO policy (the paper's Table 10 setup).
    pub fn lifo(num_vertices: usize) -> Self {
        Self::with_discipline(num_vertices, Discipline::Lifo)
    }

    /// Path tracking on top of the FIFO policy.
    pub fn fifo(num_vertices: usize) -> Self {
        Self::with_discipline(num_vertices, Discipline::Fifo)
    }

    /// Build a path tracker with an explicit discipline.
    pub fn with_discipline(num_vertices: usize, discipline: Discipline) -> Self {
        PathTracker {
            discipline,
            buffers: vec![PathBuffer::default(); num_vertices],
            processed: 0,
        }
    }

    /// The underlying receipt-order discipline.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// The path-annotated elements buffered at `v`, in receipt order.
    pub fn elements(&self, v: VertexId) -> &VecDeque<PathElement> {
        &self.buffers[v.index()].elements
    }

    /// Average path length (number of relays) over all buffered elements —
    /// the "avg. path length" column of Table 10.
    pub fn average_path_length(&self) -> f64 {
        let mut count = 0usize;
        let mut hops = 0usize;
        for b in &self.buffers {
            for e in &b.elements {
                count += 1;
                hops += e.hops();
            }
        }
        if count == 0 {
            0.0
        } else {
            hops as f64 / count as f64
        }
    }

    /// Total number of buffered elements across all vertices.
    pub fn total_elements(&self) -> usize {
        self.buffers.iter().map(|b| b.elements.len()).sum()
    }
}

impl ProvenanceTracker for PathTracker {
    fn name(&self) -> &'static str {
        match self.discipline {
            Discipline::Fifo => "FIFO + paths",
            Discipline::Lifo => "LIFO + paths",
        }
    }

    fn num_vertices(&self) -> usize {
        self.buffers.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");

        let (src_buf, dst_buf) = split_src_dst(&mut self.buffers, s, d);

        let discipline = self.discipline;
        let transmitter = r.src;
        let taken = src_buf.take(discipline, r.qty, |mut e| {
            // Relayed element: extend its path with the transmitter vertex
            // (Section 6: "its path is extended to include the transmitter").
            e.path.push(transmitter);
            dst_buf.push(e);
        });

        let residue = r.qty - taken;
        if !qty_is_zero(residue) {
            // Newborn element: its path starts (and for now ends) at its
            // origin, the source vertex of this interaction.
            dst_buf.push(PathElement {
                origin: r.src,
                qty: residue,
                path: vec![r.src],
            });
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.buffers[v.index()].total
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        OriginSet::from_vertex_pairs(
            self.buffers[v.index()]
                .elements
                .iter()
                .map(|e| (e.origin, e.qty)),
        )
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.buffers.iter().map(|b| b.entries_bytes()).sum(),
            paths_bytes: self.buffers.iter().map(|b| b.paths_bytes()).sum(),
            index_bytes: std::mem::size_of::<PathBuffer>() * self.buffers.capacity(),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
}

impl MigratableTracker for PathTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            buf: std::mem::take(&mut self.buffers[i]),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        self.buffers[v.index()] = taken.buf;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        taken.buf.encode_into(out);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            buf: PathBuffer::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::receipt_order::ReceiptOrderTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// The origin decomposition must be identical to the plain receipt-order
    /// tracker: paths add information but never change provenance.
    #[test]
    fn origins_match_plain_receipt_order() {
        for lifo in [true, false] {
            let mut with_paths = if lifo {
                PathTracker::lifo(3)
            } else {
                PathTracker::fifo(3)
            };
            let mut plain = if lifo {
                ReceiptOrderTracker::lifo(3)
            } else {
                ReceiptOrderTracker::fifo(3)
            };
            for r in paper_running_example() {
                with_paths.process(&r);
                plain.process(&r);
                for i in 0..3u32 {
                    assert!(qty_approx_eq(
                        with_paths.buffered(v(i)),
                        plain.buffered(v(i))
                    ));
                    assert!(
                        with_paths.origins(v(i)).approx_eq(&plain.origins(v(i))),
                        "lifo={lifo}, mismatch at v{i}"
                    );
                }
            }
        }
    }

    /// Trace the routes in the running example under LIFO.
    #[test]
    fn paths_record_routes() {
        let rs = paper_running_example();
        let mut t = PathTracker::lifo(3);
        t.process_all(&rs[..2]);
        // After interaction 2, v0 holds: 3 units born at v1 that travelled
        // v1 -> v2 -> v0 (path [v1, v2]) and 2 newborn units from v2
        // (path [v2]).
        let elements = t.elements(v(0));
        assert_eq!(elements.len(), 2);
        let relayed = elements.iter().find(|e| e.origin == v(1)).unwrap();
        assert_eq!(relayed.path, vec![v(1), v(2)]);
        assert_eq!(relayed.hops(), 1);
        let newborn = elements.iter().find(|e| e.origin == v(2)).unwrap();
        assert_eq!(newborn.path, vec![v(2)]);
        assert_eq!(newborn.hops(), 0);
    }

    #[test]
    fn split_fragments_inherit_and_extend_path() {
        let rs = paper_running_example();
        let mut t = PathTracker::lifo(3);
        t.process_all(&rs[..3]);
        // Interaction 3 (v0 -> v1, q=3) under LIFO: the 2 units from v2 move
        // whole, 1 unit is split off the element born at v1.
        let at_v1 = t.elements(v(1));
        assert_eq!(at_v1.len(), 2);
        let split = at_v1.iter().find(|e| e.origin == v(1)).unwrap();
        // Route: born at v1, relayed by v2, then relayed by v0.
        assert_eq!(split.path, vec![v(1), v(2), v(0)]);
        assert_eq!(split.hops(), 2);
        assert!(qty_approx_eq(split.qty, 1.0));
        // The remainder kept at v0 still has the original (shorter) path.
        let kept = t.elements(v(0)).iter().find(|e| e.origin == v(1)).unwrap();
        assert_eq!(kept.path, vec![v(1), v(2)]);
        assert!(qty_approx_eq(kept.qty, 2.0));
    }

    #[test]
    fn average_path_length_on_running_example() {
        let mut t = PathTracker::lifo(3);
        t.process_all(&paper_running_example());
        let avg = t.average_path_length();
        assert!(avg > 0.0, "some elements must have been relayed");
        assert!(avg < 5.0, "paths in a 3-vertex example are short");
        // An empty tracker reports zero.
        assert_eq!(PathTracker::lifo(2).average_path_length(), 0.0);
    }

    #[test]
    fn long_chain_grows_paths() {
        // A quantity relayed along a chain 0 -> 1 -> 2 -> ... -> 9 must carry
        // the full route.
        let n = 10u32;
        let mut t = PathTracker::fifo(n as usize);
        for i in 0..n - 1 {
            t.process(&Interaction::new(i, i + 1, i as f64 + 1.0, 5.0));
        }
        let last = t.elements(v(n - 1));
        assert_eq!(last.len(), 1);
        let e = &last[0];
        assert_eq!(e.origin, v(0));
        assert_eq!(e.hops(), (n - 2) as usize);
        let expected: Vec<VertexId> = (0..n - 1).map(v).collect();
        assert_eq!(e.path, expected);
        // Memory for paths must be non-trivial relative to entries.
        let fp = t.footprint();
        assert!(fp.paths_bytes > 0);
    }

    #[test]
    fn footprint_splits_entries_and_paths() {
        let mut t = PathTracker::lifo(3);
        t.process_all(&paper_running_example());
        let fp = t.footprint();
        assert!(fp.entries_bytes > 0);
        assert!(fp.paths_bytes > 0);
        assert_eq!(
            fp.total(),
            fp.entries_bytes + fp.paths_bytes + fp.index_bytes
        );
    }

    #[test]
    fn invariants_and_names() {
        let mut t = PathTracker::lifo(3);
        t.process_all(&paper_running_example());
        assert!(t.check_all_invariants());
        assert_eq!(t.name(), "LIFO + paths");
        assert_eq!(PathTracker::fifo(1).name(), "FIFO + paths");
        assert_eq!(t.discipline(), Discipline::Lifo);
        assert!(t.total_elements() > 0);
    }
}
