//! Diffusion (copy) propagation model with provenance annotations.
//!
//! Section 8 of the paper lists, as future work, adapting the provenance
//! machinery "to be applied on social networks, where data are diffused,
//! instead of being relayed from vertex to vertex". This module implements
//! that extension: a propagation model in which an interaction *copies*
//! information from the source to the destination instead of moving it.
//!
//! Semantics of an interaction ⟨r.s, r.d, r.t, r.q⟩ under diffusion:
//!
//! * the destination receives `r.q` units whose origin composition mirrors
//!   the current composition of the source buffer `B_{r.s}` (proportional
//!   copy);
//! * the source buffer is **not** decreased — sharing information does not
//!   destroy it;
//! * if `|B_{r.s}| < r.q`, the shortfall `r.q − |B_{r.s}|` is newly generated
//!   at `r.s`; the newborn share is added to *both* buffers, because the
//!   source retains what it creates.
//!
//! Consequences, compared to the relay trackers of Sections 4–5:
//!
//! * the per-vertex Definition 2 invariant `Σ_{τ∈O(t,B_v)} τ.q = |B_v|`
//!   still holds;
//! * global conservation does **not** hold: the total buffered quantity grows
//!   monotonically because quantities are cloned, which is exactly the key
//!   difference the paper identifies between TINs and information-diffusion
//!   networks (Section 2.2);
//! * `|B_v|` equals the total inflow into `v` plus everything `v` generated
//!   and retained, so `|B_v|` under diffusion dominates `|B_v|` under any
//!   relay policy.
//!
//! Because information is copied, influence-style questions ("how far did
//! data generated at `o` spread?") become meaningful; [`DiffusionTracker`]
//! answers them directly from the provenance vectors via
//! [`DiffusionTracker::influence_of`], [`DiffusionTracker::reach_of`] and
//! [`DiffusionTracker::influence_ranking`].

use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::{FootprintBreakdown, MemoryFootprint};
use crate::origins::OriginSet;
use crate::quantity::{qty_clamp_non_negative, qty_ge, qty_is_zero, Quantity};
use crate::sparse_vec::SparseProvenance;
use crate::tracker::{split_src_dst, ProvenanceTracker};

/// Provenance tracking under the diffusion (copy) propagation model.
///
/// The state mirrors [`super::proportional_sparse::ProportionalSparseTracker`]
/// — one sparse provenance vector per vertex — but interactions copy instead
/// of move quantity.
#[derive(Clone, Debug)]
pub struct DiffusionTracker {
    vectors: Vec<SparseProvenance>,
    totals: Vec<Quantity>,
    generated: Vec<Quantity>,
    processed: usize,
}

impl DiffusionTracker {
    /// Create a diffusion tracker for `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        DiffusionTracker {
            vectors: vec![SparseProvenance::new(); num_vertices],
            totals: vec![0.0; num_vertices],
            generated: vec![0.0; num_vertices],
            processed: 0,
        }
    }

    /// Direct read access to the provenance vector of `v`.
    pub fn vector(&self, v: VertexId) -> &SparseProvenance {
        &self.vectors[v.index()]
    }

    /// Quantity newly generated at each vertex so far (indexed by vertex).
    pub fn generated_per_vertex(&self) -> &[Quantity] {
        &self.generated
    }

    /// Total quantity generated anywhere in the network so far.
    pub fn total_generated(&self) -> Quantity {
        self.generated.iter().sum()
    }

    /// Total quantity, across *all* buffers, that originates from `origin`.
    ///
    /// Under diffusion this is the natural "influence" of an origin: how much
    /// information traceable to it is currently held anywhere in the network.
    pub fn influence_of(&self, origin: VertexId) -> Quantity {
        self.vectors.iter().map(|p| p.get_vertex(origin)).sum()
    }

    /// Number of vertices (other than `origin` itself) currently holding a
    /// non-zero quantity that originates from `origin`.
    pub fn reach_of(&self, origin: VertexId) -> usize {
        self.vectors
            .iter()
            .enumerate()
            .filter(|(holder, p)| *holder != origin.index() && !qty_is_zero(p.get_vertex(origin)))
            .count()
    }

    /// The `k` origins with the largest influence, sorted by descending
    /// influence. Ties are broken by vertex id so results are deterministic.
    pub fn influence_ranking(&self, k: usize) -> Vec<(VertexId, Quantity)> {
        let mut influence = vec![0.0f64; self.vectors.len()];
        for p in &self.vectors {
            for (origin, qty) in p.iter() {
                if let Some(v) = origin.as_vertex() {
                    if v.index() < influence.len() {
                        influence[v.index()] += qty;
                    }
                }
            }
        }
        let mut ranked: Vec<(VertexId, Quantity)> = influence
            .into_iter()
            .enumerate()
            .filter(|(_, q)| !qty_is_zero(*q))
            .map(|(i, q)| (VertexId::from(i), q))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Average provenance-list length over vertices with non-empty lists.
    pub fn average_list_length(&self) -> f64 {
        let lens: Vec<usize> = self
            .vectors
            .iter()
            .map(|p| p.len())
            .filter(|&l| l > 0)
            .collect();
        if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<usize>() as f64 / lens.len() as f64
        }
    }

    /// Total number of provenance entries across all lists.
    pub fn total_entries(&self) -> usize {
        self.vectors.iter().map(|p| p.len()).sum()
    }
}

// tin-lint: allow(tracker-conformance): the diffusion model is a sequential analytical baseline and is not shardable — it is never built by the sharded engine
impl ProvenanceTracker for DiffusionTracker {
    fn name(&self) -> &'static str {
        "Diffusion (copy)"
    }

    fn num_vertices(&self) -> usize {
        self.vectors.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        debug_assert_ne!(s, d, "self-loops are rejected at stream validation");

        let (src_vec, dst_vec) = split_src_dst(&mut self.vectors, s, d);

        let src_total = self.totals[s];
        if qty_ge(r.qty, src_total) {
            // Copy the whole of the source's composition, then generate the
            // shortfall at the source. The newborn share is retained by the
            // source as well as delivered to the destination.
            dst_vec.merge_add(src_vec);
            let newborn = qty_clamp_non_negative(r.qty - src_total);
            if newborn > 0.0 {
                dst_vec.add_vertex(r.src, newborn);
                src_vec.add_vertex(r.src, newborn);
                self.generated[s] += newborn;
                self.totals[s] += newborn;
            }
            self.totals[d] += r.qty;
        } else {
            // Proportional copy: the destination receives a scaled-down image
            // of the source's composition; the source keeps everything.
            let factor = r.qty / src_total;
            dst_vec.merge_add_scaled(src_vec, factor);
            self.totals[d] += r.qty;
        }
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.totals[v.index()]
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        self.vectors[v.index()].to_origin_set()
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: self.vectors.iter().map(|p| p.footprint_bytes()).sum(),
            paths_bytes: 0,
            index_bytes: crate::memory::vec_bytes(&self.totals)
                + crate::memory::vec_bytes(&self.generated)
                + std::mem::size_of::<SparseProvenance>() * self.vectors.capacity(),
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;
    use crate::tracker::proportional_sparse::ProportionalSparseTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// First interaction of the running example: v1 sends 3 units to v2 with
    /// an empty buffer, so 3 units are born at v1 and now exist at *both*
    /// endpoints (the source retains what it creates).
    #[test]
    fn newborn_quantity_is_retained_by_the_source() {
        let mut t = DiffusionTracker::new(3);
        t.process(&paper_running_example()[0]);
        assert!(qty_approx_eq(t.buffered(v(1)), 3.0));
        assert!(qty_approx_eq(t.buffered(v(2)), 3.0));
        assert!(qty_approx_eq(
            t.origins(v(2)).quantity_from_vertex(v(1)),
            3.0
        ));
        assert!(qty_approx_eq(
            t.origins(v(1)).quantity_from_vertex(v(1)),
            3.0
        ));
        assert!(qty_approx_eq(t.total_generated(), 3.0));
    }

    /// A proportional copy leaves the source buffer untouched.
    #[test]
    fn partial_copy_does_not_decrease_the_source() {
        let mut t = DiffusionTracker::new(3);
        // Give v0 a mixed buffer: 2 from v1, 2 from v2.
        t.process(&Interaction::new(1u32, 0u32, 1.0, 2.0));
        t.process(&Interaction::new(2u32, 0u32, 2.0, 2.0));
        assert!(qty_approx_eq(t.buffered(v(0)), 4.0));
        // v0 shares 1 unit with v1: composition is copied proportionally.
        t.process(&Interaction::new(0u32, 1u32, 3.0, 1.0));
        assert!(qty_approx_eq(t.buffered(v(0)), 4.0), "source unchanged");
        let o1 = t.origins(v(1));
        assert!(qty_approx_eq(o1.quantity_from_vertex(v(1)), 2.5));
        assert!(qty_approx_eq(o1.quantity_from_vertex(v(2)), 0.5));
        assert!(t.check_all_invariants());
    }

    /// The per-vertex Definition 2 invariant holds on the running example.
    #[test]
    fn origin_invariant_holds_on_running_example() {
        let mut t = DiffusionTracker::new(3);
        for r in paper_running_example() {
            t.process(&r);
            assert!(t.check_all_invariants(), "after {r:?}");
        }
        assert_eq!(t.interactions_processed(), 6);
    }

    /// Total buffered quantity only ever grows under diffusion, and every
    /// vertex buffers at least as much as under the relay model.
    #[test]
    fn diffusion_dominates_relay() {
        let rs = paper_running_example();
        let mut diffusion = DiffusionTracker::new(3);
        let mut relay = ProportionalSparseTracker::new(3);
        let mut previous_total = 0.0;
        for r in &rs {
            diffusion.process(r);
            relay.process(r);
            let total = diffusion.total_buffered();
            assert!(total >= previous_total - 1e-9, "total must not shrink");
            previous_total = total;
            for i in 0..3u32 {
                assert!(
                    diffusion.buffered(v(i)) + 1e-9 >= relay.buffered(v(i)),
                    "diffusion must dominate relay at v{i}"
                );
            }
        }
    }

    /// Influence accounting: summing influence over all origins equals the
    /// total buffered quantity, and the ranking is sorted.
    #[test]
    fn influence_sums_to_total_buffered() {
        let mut t = DiffusionTracker::new(4);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 5.0));
        t.process(&Interaction::new(1u32, 2u32, 2.0, 3.0));
        t.process(&Interaction::new(2u32, 3u32, 3.0, 1.0));
        let ranking = t.influence_ranking(10);
        let total_influence: f64 = ranking.iter().map(|(_, q)| q).sum();
        assert!(qty_approx_eq(total_influence, t.total_buffered()));
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "ranking must be sorted");
        }
        // v0 generated everything relayed downstream, so it is the most
        // influential origin.
        assert_eq!(ranking[0].0, v(0));
    }

    /// Reach counts the holders other than the origin itself.
    #[test]
    fn reach_counts_distinct_holders() {
        let mut t = DiffusionTracker::new(4);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 2.0));
        t.process(&Interaction::new(1u32, 2u32, 2.0, 1.0));
        t.process(&Interaction::new(1u32, 3u32, 3.0, 1.0));
        // v0's information reached v1, v2 and v3 (its own retained copy does
        // not count).
        assert_eq!(t.reach_of(v(0)), 3);
        assert_eq!(t.reach_of(v(3)), 0);
    }

    /// Influence ranking truncates to k and filters zero-influence vertices.
    #[test]
    fn influence_ranking_truncates() {
        let mut t = DiffusionTracker::new(5);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 1.0));
        t.process(&Interaction::new(2u32, 3u32, 2.0, 4.0));
        assert_eq!(t.influence_ranking(1).len(), 1);
        assert_eq!(t.influence_ranking(1)[0].0, v(2));
        assert_eq!(t.influence_ranking(10).len(), 2);
        assert!(qty_approx_eq(t.influence_of(v(4)), 0.0));
    }

    /// Buffered quantity at a vertex equals its total inflow plus retained
    /// newborn quantity.
    #[test]
    fn buffered_equals_inflow() {
        let rs = paper_running_example();
        let mut t = DiffusionTracker::new(3);
        t.process_all(&rs);
        for i in 0..3u32 {
            let inflow: f64 = rs.iter().filter(|r| r.dst == v(i)).map(|r| r.qty).sum();
            let retained = t.generated_per_vertex()[i as usize];
            assert!(
                qty_approx_eq(t.buffered(v(i)), inflow + retained),
                "v{i}: buffered {} vs inflow {inflow} + retained {retained}",
                t.buffered(v(i))
            );
        }
    }

    #[test]
    fn footprint_and_list_statistics() {
        let mut t = DiffusionTracker::new(3);
        assert_eq!(t.average_list_length(), 0.0);
        t.process_all(&paper_running_example());
        assert!(t.footprint().entries_bytes > 0);
        assert_eq!(t.footprint().paths_bytes, 0);
        assert!(t.total_entries() > 0);
        assert!(t.average_list_length() >= 1.0);
        assert_eq!(t.name(), "Diffusion (copy)");
        assert_eq!(t.num_vertices(), 3);
    }
}
