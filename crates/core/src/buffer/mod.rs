//! Vertex buffers `B_v` and the provenance elements they hold.
//!
//! Each vertex `v` has a buffer `B_v` accumulating the quantities that have
//! flown into `v` and have not yet been relayed (Section 3). How the buffer is
//! organised depends on the selection policy:
//!
//! * generation-time policies (Section 4.1) keep `(origin, birth-time,
//!   quantity)` **triples** in a min- or max-heap keyed by birth time —
//!   see [`heap_buffer::HeapBuffer`];
//! * receipt-order policies (Section 4.2) keep `(origin, quantity)` **pairs**
//!   in a FIFO queue or a LIFO stack — see [`queue_buffer::QueueBuffer`];
//! * the proportional policy (Section 4.3) does not keep discrete elements at
//!   all, only a provenance vector per vertex (see the `dense_vec` /
//!   `sparse_vec` modules).

pub mod heap_buffer;
pub mod queue_buffer;

use serde::{Deserialize, Serialize};

use crate::ids::{Timestamp, VertexId};
use crate::quantity::Quantity;

/// A provenance **triple** `(o, t, q)`: quantity `q` born at vertex `o` at
/// time `t` (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Triple {
    /// Origin vertex that generated the quantity.
    pub origin: VertexId,
    /// Birth time of the quantity.
    pub birth: Timestamp,
    /// The quantity itself.
    pub qty: Quantity,
}

impl Triple {
    /// Construct a triple.
    pub fn new(origin: impl Into<VertexId>, birth: impl Into<Timestamp>, qty: Quantity) -> Self {
        Triple {
            origin: origin.into(),
            birth: birth.into(),
            qty,
        }
    }
}

/// A provenance **pair** `(o, q)`: quantity `q` born at vertex `o`
/// (Section 4.2 — receipt-order policies do not need the birth time).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pair {
    /// Origin vertex that generated the quantity.
    pub origin: VertexId,
    /// The quantity itself.
    pub qty: Quantity,
}

impl Pair {
    /// Construct a pair.
    pub fn new(origin: impl Into<VertexId>, qty: Quantity) -> Self {
        Pair {
            origin: origin.into(),
            qty,
        }
    }
}

/// What a buffer hands back when asked to select quantity for a transfer:
/// either a whole element was moved, or an element was split and a fragment
/// of it moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TakeOutcome {
    /// The selected element was transferred entirely and removed from the
    /// source buffer.
    Whole,
    /// The selected element was split: a fragment with the requested quantity
    /// was produced and the remainder stays in the source buffer.
    Split,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_construction() {
        let t = Triple::new(1u32, 2.0, 3.0);
        assert_eq!(t.origin, VertexId::new(1));
        assert_eq!(t.birth, Timestamp::new(2.0));
        assert_eq!(t.qty, 3.0);
    }

    #[test]
    fn pair_construction() {
        let p = Pair::new(4u32, 0.5);
        assert_eq!(p.origin, VertexId::new(4));
        assert_eq!(p.qty, 0.5);
    }

    #[test]
    fn take_outcome_variants() {
        assert_ne!(TakeOutcome::Whole, TakeOutcome::Split);
    }
}
