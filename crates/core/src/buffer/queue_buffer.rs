//! Queue/stack buffers for the receipt-order selection policies
//! (Section 4.2).
//!
//! Each buffer holds provenance pairs `(o, q)` in the order they were
//! received. The **FIFO** policy selects the *least recently added* pairs
//! first (a queue, natural for pipelines and traffic networks); the **LIFO**
//! policy selects the *most recently added* pairs first (a stack, natural for
//! cash registers and wallets). Transferred pairs are appended to the
//! destination buffer in selection order.

use std::collections::VecDeque;

use crate::buffer::Pair;
use crate::ids::VertexId;
use crate::memory::{deque_bytes, MemoryFootprint};
use crate::quantity::{qty_gt, qty_is_zero, Quantity};

/// Which end of the buffer is selected for transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// First-in-first-out: select the least recently added pair.
    Fifo,
    /// Last-in-first-out: select the most recently added pair.
    Lifo,
}

/// A vertex buffer organised as a FIFO queue or LIFO stack of pairs.
#[derive(Clone, Debug)]
pub struct QueueBuffer {
    discipline: Discipline,
    deque: VecDeque<Pair>,
    total: Quantity,
    coalesce: bool,
}

impl QueueBuffer {
    /// Create an empty buffer with the given discipline.
    ///
    /// Pairs are stored exactly as received (no merging), which reproduces
    /// the buffer contents of Table 4 in the paper verbatim.
    pub fn new(discipline: Discipline) -> Self {
        QueueBuffer {
            discipline,
            deque: VecDeque::new(),
            total: 0.0,
            coalesce: false,
        }
    }

    /// Create a buffer that merges adjacent pairs with the same origin.
    ///
    /// Coalescing does not change which origins contribute to any transfer
    /// (a run of same-origin pairs is selected contiguously under both FIFO
    /// and LIFO), but it reduces the number of stored entries. It is exposed
    /// as an ablation knob for the memory experiments (Table 8).
    pub fn new_coalescing(discipline: Discipline) -> Self {
        QueueBuffer {
            discipline,
            deque: VecDeque::new(),
            total: 0.0,
            coalesce: true,
        }
    }

    /// The buffer discipline.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Total buffered quantity `|B_v|`.
    #[inline]
    pub fn total(&self) -> Quantity {
        self.total
    }

    /// Number of pairs currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True if no pairs are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Append a received pair (always at the back — this is the "order of
    /// receipt").
    pub fn push(&mut self, pair: Pair) {
        if qty_is_zero(pair.qty) {
            return;
        }
        self.total += pair.qty;
        if self.coalesce {
            if let Some(last) = self.deque.back_mut() {
                if last.origin == pair.origin {
                    last.qty += pair.qty;
                    return;
                }
            }
        }
        self.deque.push_back(pair);
    }

    /// Peek at the pair that the discipline would select next.
    pub fn peek(&self) -> Option<&Pair> {
        match self.discipline {
            Discipline::Fifo => self.deque.front(),
            Discipline::Lifo => self.deque.back(),
        }
    }

    /// Select up to `amount` quantity, invoking `sink` for each transferred
    /// pair (whole or split fragment) in selection order.
    ///
    /// Returns the quantity actually taken, which is `min(amount, total)`.
    pub fn take(&mut self, amount: Quantity, mut sink: impl FnMut(Pair)) -> Quantity {
        let mut residue = amount;
        let mut taken = 0.0;
        while residue > 0.0 && !qty_is_zero(residue) && !self.deque.is_empty() {
            let top_qty = self.peek().map(|p| p.qty).unwrap_or(0.0);
            if qty_gt(top_qty, residue) {
                // Split the selected pair.
                let origin = {
                    let top = match self.discipline {
                        Discipline::Fifo => self.deque.front_mut(),
                        Discipline::Lifo => self.deque.back_mut(),
                    }
                    .expect("deque is non-empty: peeked above");
                    top.qty -= residue;
                    top.origin
                };
                self.total -= residue;
                taken += residue;
                sink(Pair {
                    origin,
                    qty: residue,
                });
                residue = 0.0;
            } else {
                let pair = match self.discipline {
                    Discipline::Fifo => self.deque.pop_front(),
                    Discipline::Lifo => self.deque.pop_back(),
                }
                .expect("deque is non-empty: peeked above");
                self.total -= pair.qty;
                residue -= pair.qty;
                taken += pair.qty;
                sink(pair);
            }
        }
        if self.deque.is_empty() {
            self.total = 0.0;
        }
        taken
    }

    /// Iterate over the stored pairs, from least recently to most recently
    /// added (the display order of Table 4).
    pub fn iter(&self) -> impl Iterator<Item = &Pair> {
        self.deque.iter()
    }

    /// The stored pairs as a vector, least recently added first.
    pub fn as_pairs(&self) -> Vec<(VertexId, Quantity)> {
        self.deque.iter().map(|p| (p.origin, p.qty)).collect()
    }

    /// Append the checkpoint encoding (pairs in receipt order).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_bool, put_f64, put_u32, put_u8, put_usize};
        put_u8(
            out,
            match self.discipline {
                Discipline::Fifo => 0,
                Discipline::Lifo => 1,
            },
        );
        put_bool(out, self.coalesce);
        put_f64(out, self.total);
        put_usize(out, self.deque.len());
        for p in &self.deque {
            put_u32(out, p.origin.raw());
            put_f64(out, p.qty);
        }
    }

    /// Decode a buffer written by [`Self::encode_into`].
    pub fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        let discipline = match r.u8()? {
            0 => Discipline::Fifo,
            1 => Discipline::Lifo,
            other => return Err(r.corrupt(format!("unknown queue discipline {other}"))),
        };
        let coalesce = r.bool()?;
        let total = r.f64()?;
        let len = r.usize()?;
        const PAIR_BYTES: usize = 12;
        if r.remaining() < len.saturating_mul(PAIR_BYTES) {
            return Err(r.corrupt(format!("truncated: {len} queue pairs declared")));
        }
        let mut deque = VecDeque::with_capacity(len);
        for _ in 0..len {
            let origin = VertexId::new(r.u32()?);
            let qty = r.f64()?;
            deque.push_back(Pair { origin, qty });
        }
        Ok(QueueBuffer {
            discipline,
            deque,
            total,
            coalesce,
        })
    }
}

impl MemoryFootprint for QueueBuffer {
    fn footprint_bytes(&self) -> usize {
        deque_bytes(&self.deque)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::qty_approx_eq;

    fn p(origin: u32, qty: f64) -> Pair {
        Pair::new(origin, qty)
    }

    #[test]
    fn empty_buffer() {
        let b = QueueBuffer::new(Discipline::Fifo);
        assert!(b.is_empty());
        assert_eq!(b.total(), 0.0);
        assert!(b.peek().is_none());
        assert_eq!(b.discipline(), Discipline::Fifo);
    }

    #[test]
    fn push_and_total() {
        let mut b = QueueBuffer::new(Discipline::Fifo);
        b.push(p(1, 3.0));
        b.push(p(2, 2.0));
        assert_eq!(b.total(), 5.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn default_buffer_keeps_pairs_separate() {
        let mut b = QueueBuffer::new(Discipline::Lifo);
        b.push(p(1, 3.0));
        b.push(p(1, 2.0));
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.as_pairs(),
            vec![(VertexId::new(1), 3.0), (VertexId::new(1), 2.0)]
        );
    }

    #[test]
    fn coalescing_buffer_merges_adjacent_same_origin() {
        let mut b = QueueBuffer::new_coalescing(Discipline::Lifo);
        b.push(p(1, 3.0));
        b.push(p(1, 2.0));
        b.push(p(2, 1.0));
        b.push(p(1, 4.0));
        assert_eq!(b.len(), 3);
        assert_eq!(b.total(), 10.0);
        assert_eq!(
            b.as_pairs(),
            vec![
                (VertexId::new(1), 5.0),
                (VertexId::new(2), 1.0),
                (VertexId::new(1), 4.0)
            ]
        );
    }

    #[test]
    fn push_ignores_zero() {
        let mut b = QueueBuffer::new(Discipline::Fifo);
        b.push(p(1, 0.0));
        assert!(b.is_empty());
    }

    #[test]
    fn fifo_selects_front() {
        let mut b = QueueBuffer::new(Discipline::Fifo);
        b.push(p(1, 1.0));
        b.push(p(2, 1.0));
        assert_eq!(b.peek().unwrap().origin, VertexId::new(1));
        let mut moved = Vec::new();
        b.take(2.0, |x| moved.push(x.origin.raw()));
        assert_eq!(moved, vec![1, 2]);
    }

    #[test]
    fn lifo_selects_back() {
        let mut b = QueueBuffer::new(Discipline::Lifo);
        b.push(p(1, 1.0));
        b.push(p(2, 1.0));
        assert_eq!(b.peek().unwrap().origin, VertexId::new(2));
        let mut moved = Vec::new();
        b.take(2.0, |x| moved.push(x.origin.raw()));
        assert_eq!(moved, vec![2, 1]);
    }

    #[test]
    fn take_splits_fifo() {
        let mut b = QueueBuffer::new(Discipline::Fifo);
        b.push(p(1, 4.0));
        b.push(p(2, 3.0));
        let mut moved = Vec::new();
        let taken = b.take(5.0, |x| moved.push(x));
        assert_eq!(taken, 5.0);
        assert_eq!(moved.len(), 2);
        assert_eq!(moved[0].qty, 4.0);
        assert_eq!(moved[1].qty, 1.0);
        assert_eq!(moved[1].origin, VertexId::new(2));
        assert!(qty_approx_eq(b.total(), 2.0));
        assert_eq!(b.peek().unwrap().origin, VertexId::new(2));
    }

    #[test]
    fn take_splits_lifo_keeps_remainder_on_top() {
        let mut b = QueueBuffer::new(Discipline::Lifo);
        b.push(p(1, 1.0));
        b.push(p(2, 4.0));
        let mut moved = Vec::new();
        b.take(2.0, |x| moved.push(x));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0], p(2, 2.0));
        // Remainder of the split pair is still the LIFO top.
        assert_eq!(b.peek().unwrap().origin, VertexId::new(2));
        assert!(qty_approx_eq(b.peek().unwrap().qty, 2.0));
    }

    #[test]
    fn take_more_than_available() {
        let mut b = QueueBuffer::new(Discipline::Fifo);
        b.push(p(1, 1.5));
        let taken = b.take(10.0, |_| {});
        assert_eq!(taken, 1.5);
        assert!(b.is_empty());
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn take_exact_boundary_is_whole_transfer() {
        let mut b = QueueBuffer::new(Discipline::Lifo);
        b.push(p(1, 2.0));
        let mut moved = Vec::new();
        b.take(2.0, |x| moved.push(x));
        assert_eq!(moved.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn take_zero_is_noop() {
        let mut b = QueueBuffer::new(Discipline::Fifo);
        b.push(p(1, 2.0));
        let mut calls = 0;
        assert_eq!(b.take(0.0, |_| calls += 1), 0.0);
        assert_eq!(calls, 0);
        assert_eq!(b.total(), 2.0);
    }

    #[test]
    fn conservation_under_random_takes() {
        let mut b = QueueBuffer::new(Discipline::Lifo);
        for i in 0..20 {
            b.push(p(i % 5, 0.7));
        }
        let before = b.total();
        let mut out = 0.0;
        for step in 1..10 {
            out += b.take(0.3 * step as f64, |_| {});
        }
        assert!(qty_approx_eq(before, out + b.total()));
    }

    #[test]
    fn footprint_grows_with_contents() {
        let mut b = QueueBuffer::new(Discipline::Fifo);
        let empty = b.footprint_bytes();
        for i in 0..100 {
            b.push(p(i, 1.0)); // distinct origins: no coalescing
        }
        assert!(b.footprint_bytes() > empty);
        assert!(b.footprint_bytes() >= 100 * std::mem::size_of::<Pair>());
    }

    #[test]
    fn codec_round_trips_contents_and_flags() {
        for make in [QueueBuffer::new, QueueBuffer::new_coalescing] {
            for disc in [Discipline::Fifo, Discipline::Lifo] {
                let mut b = make(disc);
                for i in 0..12 {
                    b.push(p(i % 4, 0.3 + f64::from(i)));
                }
                b.take(2.7, |_| {});
                let mut buf = Vec::new();
                b.encode_into(&mut buf);
                let mut r = crate::codec::ByteReader::new(&buf, "states");
                let restored = QueueBuffer::decode_from(&mut r).unwrap();
                r.expect_end().unwrap();
                assert_eq!(restored.discipline(), b.discipline());
                assert_eq!(restored.coalesce, b.coalesce);
                assert_eq!(restored.total().to_bits(), b.total().to_bits());
                assert_eq!(restored.as_pairs(), b.as_pairs());
            }
        }
    }

    #[test]
    fn iter_in_receipt_order() {
        let mut b = QueueBuffer::new(Discipline::Lifo);
        b.push(p(3, 1.0));
        b.push(p(1, 2.0));
        let origins: Vec<u32> = b.iter().map(|x| x.origin.raw()).collect();
        assert_eq!(origins, vec![3, 1]);
    }
}
