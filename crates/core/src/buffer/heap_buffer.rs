//! Heap-organised buffers for the generation-time selection policies
//! (Section 4.1, Algorithm 2).
//!
//! Each buffer holds provenance triples `(o, t, q)` in a binary heap keyed by
//! birth time `t`. The *least-recently-born* (LRB) policy pops from a
//! min-heap; the *most-recently-born* (MRB) policy pops from a max-heap.
//! Selecting the quantity to transfer repeatedly pops (or splits) the top
//! triple until the requested amount is reached, exactly as in Algorithm 2.

use std::collections::BinaryHeap;

use crate::buffer::Triple;
use crate::ids::Timestamp;
use crate::memory::{heap_bytes, MemoryFootprint};
use crate::quantity::{qty_gt, qty_is_zero, Quantity};

/// Whether the heap prioritises the oldest or the newest birth time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapKind {
    /// Min-heap on birth time: transfer the *least recently born* quantities
    /// first.
    LeastRecentlyBorn,
    /// Max-heap on birth time: transfer the *most recently born* quantities
    /// first.
    MostRecentlyBorn,
}

/// Internal heap entry. Ordering is by `key` (a birth time whose sign encodes
/// the heap kind), with the insertion sequence number breaking ties so that
/// behaviour is deterministic when several triples share a birth time.
#[derive(Clone, Copy, Debug)]
struct Entry {
    /// Priority key: birth time for MRB, negated birth time for LRB
    /// (std's `BinaryHeap` is a max-heap).
    key: f64,
    /// Insertion sequence number; *earlier* insertions win ties, so the tie
    /// break is "first received first" under both kinds.
    seq: u64,
    triple: Triple,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Larger key wins; among equal keys, the smaller sequence number wins.
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A vertex buffer organised as a heap of provenance triples.
#[derive(Clone, Debug)]
pub struct HeapBuffer {
    kind: HeapKind,
    heap: BinaryHeap<Entry>,
    total: Quantity,
    next_seq: u64,
}

impl HeapBuffer {
    /// Create an empty buffer of the given kind.
    pub fn new(kind: HeapKind) -> Self {
        HeapBuffer {
            kind,
            heap: BinaryHeap::new(),
            total: 0.0,
            next_seq: 0,
        }
    }

    fn key_for(&self, birth: Timestamp) -> f64 {
        match self.kind {
            HeapKind::LeastRecentlyBorn => -birth.0,
            HeapKind::MostRecentlyBorn => birth.0,
        }
    }

    /// The buffer kind.
    pub fn kind(&self) -> HeapKind {
        self.kind
    }

    /// Total buffered quantity `|B_v|`.
    #[inline]
    pub fn total(&self) -> Quantity {
        self.total
    }

    /// Number of triples currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no triples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Add a triple to the buffer.
    pub fn push(&mut self, triple: Triple) {
        if qty_is_zero(triple.qty) {
            return;
        }
        let key = self.key_for(triple.birth);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.total += triple.qty;
        self.heap.push(Entry { key, seq, triple });
    }

    /// Peek at the triple that the policy would select next.
    pub fn peek(&self) -> Option<&Triple> {
        self.heap.peek().map(|e| &e.triple)
    }

    /// Select up to `amount` quantity from the buffer, invoking `sink` for
    /// each transferred triple (whole or split fragment), in selection order.
    ///
    /// Returns the quantity actually taken, which is `min(amount, total)`.
    /// This is the inner `while` loop of Algorithm 2 (lines 6–17).
    pub fn take(&mut self, amount: Quantity, mut sink: impl FnMut(Triple)) -> Quantity {
        let mut residue = amount;
        let mut taken = 0.0;
        while residue > 0.0 && !qty_is_zero(residue) && !self.heap.is_empty() {
            // Inspect the top element.
            let top_qty = self.heap.peek().map(|e| e.triple.qty).unwrap_or(0.0);
            if qty_gt(top_qty, residue) {
                // Split: a fragment of `residue` moves, the remainder stays.
                let mut top = self
                    .heap
                    .peek_mut()
                    .expect("heap is non-empty: peeked above");
                top.triple.qty -= residue;
                let fragment = Triple {
                    origin: top.triple.origin,
                    birth: top.triple.birth,
                    qty: residue,
                };
                drop(top); // key unchanged, heap order preserved
                self.total -= residue;
                taken += residue;
                sink(fragment);
                residue = 0.0;
            } else {
                // Transfer the whole triple.
                let entry = self.heap.pop().expect("heap is non-empty: peeked above");
                self.total -= entry.triple.qty;
                residue -= entry.triple.qty;
                taken += entry.triple.qty;
                sink(entry.triple);
            }
        }
        if self.heap.is_empty() {
            // Avoid drift: an emptied buffer holds exactly zero.
            self.total = 0.0;
        }
        taken
    }

    /// Iterate over all stored triples in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.heap.iter().map(|e| &e.triple)
    }

    /// Drain the buffer, returning all triples in selection order.
    pub fn drain_in_order(&mut self) -> Vec<Triple> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e.triple);
        }
        self.total = 0.0;
        out
    }

    /// Append the checkpoint encoding. Entries are written in the heap's
    /// *internal array order* (not selection order): rebuilding a
    /// `BinaryHeap` from an array that already satisfies the heap property
    /// leaves the layout untouched, so a restored buffer replays subsequent
    /// splits and pops bit-identically to the original.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_f64, put_u32, put_u64, put_u8, put_usize};
        put_u8(
            out,
            match self.kind {
                HeapKind::LeastRecentlyBorn => 0,
                HeapKind::MostRecentlyBorn => 1,
            },
        );
        put_f64(out, self.total);
        put_u64(out, self.next_seq);
        put_usize(out, self.heap.len());
        for e in self.heap.iter() {
            put_f64(out, e.key);
            put_u64(out, e.seq);
            put_u32(out, e.triple.origin.raw());
            put_f64(out, e.triple.birth.0);
            put_f64(out, e.triple.qty);
        }
    }

    /// Decode a buffer written by [`Self::encode_into`].
    pub fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        use crate::ids::{Timestamp, VertexId};
        let kind = match r.u8()? {
            0 => HeapKind::LeastRecentlyBorn,
            1 => HeapKind::MostRecentlyBorn,
            other => return Err(r.corrupt(format!("unknown heap kind {other}"))),
        };
        let total = r.f64()?;
        let next_seq = r.u64()?;
        let len = r.usize()?;
        const ENTRY_BYTES: usize = 36;
        if r.remaining() < len.saturating_mul(ENTRY_BYTES) {
            return Err(r.corrupt(format!("truncated: {len} heap entries declared")));
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            let key = r.f64()?;
            let seq = r.u64()?;
            let origin = VertexId::new(r.u32()?);
            let birth = Timestamp(r.f64()?);
            let qty = r.f64()?;
            entries.push(Entry {
                key,
                seq,
                triple: Triple { origin, birth, qty },
            });
        }
        Ok(HeapBuffer {
            kind,
            // `From<Vec<_>>` heapifies with sift-downs, which move nothing
            // when the array is already a valid heap — layout is preserved.
            heap: BinaryHeap::from(entries),
            total,
            next_seq,
        })
    }
}

impl MemoryFootprint for HeapBuffer {
    fn footprint_bytes(&self) -> usize {
        heap_bytes(&self.heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;
    use crate::quantity::qty_approx_eq;

    fn t(origin: u32, birth: f64, qty: f64) -> Triple {
        Triple::new(origin, birth, qty)
    }

    #[test]
    fn empty_buffer() {
        let b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.total(), 0.0);
        assert!(b.peek().is_none());
        assert_eq!(b.kind(), HeapKind::LeastRecentlyBorn);
    }

    #[test]
    fn push_accumulates_total() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 3.0));
        b.push(t(2, 2.0, 4.0));
        assert_eq!(b.len(), 2);
        assert_eq!(b.total(), 7.0);
    }

    #[test]
    fn push_ignores_zero_quantity() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 0.0));
        assert!(b.is_empty());
    }

    #[test]
    fn lrb_selects_oldest_first() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 5.0, 1.0));
        b.push(t(2, 1.0, 1.0));
        b.push(t(3, 3.0, 1.0));
        assert_eq!(b.peek().unwrap().birth, Timestamp::new(1.0));
        let order = b.drain_in_order();
        let births: Vec<f64> = order.iter().map(|x| x.birth.0).collect();
        assert_eq!(births, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn mrb_selects_newest_first() {
        let mut b = HeapBuffer::new(HeapKind::MostRecentlyBorn);
        b.push(t(1, 5.0, 1.0));
        b.push(t(2, 1.0, 1.0));
        b.push(t(3, 3.0, 1.0));
        assert_eq!(b.peek().unwrap().birth, Timestamp::new(5.0));
        let order = b.drain_in_order();
        let births: Vec<f64> = order.iter().map(|x| x.birth.0).collect();
        assert_eq!(births, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(10, 2.0, 1.0));
        b.push(t(20, 2.0, 1.0));
        b.push(t(30, 2.0, 1.0));
        let order = b.drain_in_order();
        let origins: Vec<u32> = order.iter().map(|x| x.origin.raw()).collect();
        assert_eq!(origins, vec![10, 20, 30]);

        let mut b = HeapBuffer::new(HeapKind::MostRecentlyBorn);
        b.push(t(10, 2.0, 1.0));
        b.push(t(20, 2.0, 1.0));
        let order = b.drain_in_order();
        let origins: Vec<u32> = order.iter().map(|x| x.origin.raw()).collect();
        assert_eq!(origins, vec![10, 20]);
    }

    #[test]
    fn take_whole_elements() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 3.0));
        b.push(t(2, 2.0, 2.0));
        let mut moved = Vec::new();
        let taken = b.take(5.0, |x| moved.push(x));
        assert_eq!(taken, 5.0);
        assert_eq!(moved.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn take_splits_last_element() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 3.0));
        b.push(t(2, 2.0, 2.0));
        let mut moved = Vec::new();
        let taken = b.take(4.0, |x| moved.push(x));
        assert_eq!(taken, 4.0);
        // The time-1 triple moved whole (3.0), the time-2 triple split (1.0).
        assert_eq!(moved.len(), 2);
        assert_eq!(moved[0].qty, 3.0);
        assert_eq!(moved[1].qty, 1.0);
        assert_eq!(moved[1].origin, VertexId::new(2));
        // Remainder stays with original origin/birth.
        assert_eq!(b.len(), 1);
        assert!(qty_approx_eq(b.total(), 1.0));
        let rest = b.peek().unwrap();
        assert_eq!(rest.origin, VertexId::new(2));
        assert_eq!(rest.birth, Timestamp::new(2.0));
        assert!(qty_approx_eq(rest.qty, 1.0));
    }

    #[test]
    fn take_more_than_available_returns_total() {
        let mut b = HeapBuffer::new(HeapKind::MostRecentlyBorn);
        b.push(t(1, 1.0, 2.5));
        let mut moved = Vec::new();
        let taken = b.take(10.0, |x| moved.push(x));
        assert_eq!(taken, 2.5);
        assert!(b.is_empty());
        assert_eq!(moved.len(), 1);
    }

    #[test]
    fn take_zero_moves_nothing() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 2.0));
        let mut calls = 0;
        let taken = b.take(0.0, |_| calls += 1);
        assert_eq!(taken, 0.0);
        assert_eq!(calls, 0);
        assert_eq!(b.total(), 2.0);
    }

    #[test]
    fn take_exact_boundary_moves_whole_not_split() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 3.0));
        let mut moved = Vec::new();
        b.take(3.0, |x| moved.push(x));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].qty, 3.0);
        assert!(b.is_empty());
    }

    #[test]
    fn split_preserves_selection_order_afterwards() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 5.0));
        b.push(t(2, 2.0, 5.0));
        // Split the oldest.
        b.take(2.0, |_| {});
        // The (partially consumed) oldest triple must still be selected first.
        assert_eq!(b.peek().unwrap().origin, VertexId::new(1));
        assert!(qty_approx_eq(b.peek().unwrap().qty, 3.0));
        assert!(qty_approx_eq(b.total(), 8.0));
    }

    #[test]
    fn iter_visits_all_triples() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 1.0));
        b.push(t(2, 2.0, 2.0));
        let total: f64 = b.iter().map(|x| x.qty).sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn footprint_grows_with_contents() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        let empty = b.footprint_bytes();
        for i in 0..100 {
            b.push(t(i, i as f64, 1.0));
        }
        assert!(b.footprint_bytes() > empty);
        assert!(b.footprint_bytes() >= 100 * std::mem::size_of::<Triple>());
    }

    #[test]
    fn codec_round_trip_preserves_internal_layout() {
        for kind in [HeapKind::LeastRecentlyBorn, HeapKind::MostRecentlyBorn] {
            let mut b = HeapBuffer::new(kind);
            for i in 0..20 {
                b.push(t(i, f64::from(i % 5), 0.1 + f64::from(i)));
            }
            // Partially consume so the heap has a history-dependent layout.
            b.take(7.3, |_| {});

            let mut buf = Vec::new();
            b.encode_into(&mut buf);
            let mut r = crate::codec::ByteReader::new(&buf, "states");
            let restored = HeapBuffer::decode_from(&mut r).unwrap();
            r.expect_end().unwrap();

            assert_eq!(restored.kind(), b.kind());
            assert_eq!(restored.total().to_bits(), b.total().to_bits());
            assert_eq!(restored.next_seq, b.next_seq);
            // Internal array order must match exactly, not just the multiset.
            let orig: Vec<(u64, u32, u64)> = b
                .heap
                .iter()
                .map(|e| (e.key.to_bits(), e.triple.origin.raw(), e.seq))
                .collect();
            let back: Vec<(u64, u32, u64)> = restored
                .heap
                .iter()
                .map(|e| (e.key.to_bits(), e.triple.origin.raw(), e.seq))
                .collect();
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn codec_rejects_truncated_entries() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        b.push(t(1, 1.0, 2.0));
        let mut buf = Vec::new();
        b.encode_into(&mut buf);
        buf.truncate(buf.len() - 5);
        let mut r = crate::codec::ByteReader::new(&buf, "states");
        assert!(HeapBuffer::decode_from(&mut r).is_err());
    }

    #[test]
    fn fractional_take_sequence_conserves_total() {
        let mut b = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        for i in 0..10 {
            b.push(t(i, i as f64, 1.0 / 3.0));
        }
        let before = b.total();
        let mut moved_total = 0.0;
        for _ in 0..7 {
            moved_total += b.take(0.4, |_| {});
        }
        assert!(qty_approx_eq(before, moved_total + b.total()));
    }
}
