//! Dense provenance vectors `p_v` (Section 4.3, Algorithm 3).
//!
//! A [`DenseProvenance`] holds one slot per possible origin: the `i`-th value
//! is the quantity fragment in `B_v` which originates from origin `i`. For
//! full proportional tracking the origin space is the vertex set `V`; for
//! selective tracking it is the `k` tracked vertices plus one "other" slot;
//! for grouped tracking it is the set of groups.

use serde::{Deserialize, Serialize};

use crate::memory::{vec_bytes, MemoryFootprint};
use crate::quantity::{qty_is_zero, Quantity};
use crate::simd;

/// A dense provenance vector over a fixed origin space of size `dim`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenseProvenance {
    values: Vec<Quantity>,
}

impl DenseProvenance {
    /// Create a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        DenseProvenance {
            // tin-lint: allow(hot-path-alloc): constructor; vectors are allocated once per vertex at setup
            values: vec![0.0; dim],
        }
    }

    /// Vector dimension (size of the origin space).
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Read slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Quantity {
        self.values[i]
    }

    /// Add `q` to slot `i` (the `e_{v,x}` one-hot addition of Algorithm 3).
    #[inline]
    pub fn add_at(&mut self, i: usize, q: Quantity) {
        self.values[i] += q;
    }

    /// Total quantity represented by the vector (equals `|B_v|`).
    pub fn total(&self) -> Quantity {
        simd::sum(&self.values)
    }

    /// True if every slot is (approximately) zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&x| qty_is_zero(x))
    }

    /// `self ⊕ other` (component-wise addition, Algorithm 3 line 6).
    pub fn add_assign(&mut self, other: &DenseProvenance) {
        simd::add_assign(&mut self.values, &other.values);
    }

    /// `self ⊕ factor·other` (Algorithm 3 line 9).
    pub fn add_scaled(&mut self, other: &DenseProvenance, factor: f64) {
        simd::add_scaled(&mut self.values, &other.values, factor);
    }

    /// Keep only a `factor` fraction of every slot (Algorithm 3 line 10,
    /// written as multiplication by `1 - r.q/|B_{r.s}|`).
    pub fn scale(&mut self, factor: f64) {
        simd::scale(&mut self.values, factor);
    }

    /// Reset to all zeros.
    pub fn clear(&mut self) {
        simd::clear(&mut self.values);
    }

    /// Iterate over `(slot, quantity)` pairs with non-zero quantity.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, Quantity)> + '_ {
        self.values
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, q)| !qty_is_zero(*q))
    }

    /// Raw slice access (used by the kernels' ablation bench).
    pub fn as_slice(&self) -> &[Quantity] {
        &self.values
    }

    /// Move the whole contents of `self` into `dst`, leaving `self` zero.
    /// This is the `p_{r.d} = p_{r.d} ⊕ p_{r.s}; p_{r.s} = 0` step of
    /// Algorithm 3 (full relay case).
    pub fn drain_into(&mut self, dst: &mut DenseProvenance) {
        dst.add_assign(self);
        self.clear();
    }

    /// Transfer the fraction `factor` of `self` into `dst` (proportional
    /// split, Algorithm 3 lines 9–10).
    pub fn transfer_fraction(&mut self, dst: &mut DenseProvenance, factor: f64) {
        debug_assert!(
            (0.0..=1.0 + 1e-12).contains(&factor),
            "transfer fraction must be in [0,1], got {factor}"
        );
        dst.add_scaled(self, factor);
        self.scale(1.0 - factor);
    }

    /// Append the checkpoint encoding (dimension + every slot's bit pattern).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_f64, put_usize};
        put_usize(out, self.values.len());
        for &v in &self.values {
            put_f64(out, v);
        }
    }

    /// Decode a vector written by [`Self::encode_into`].
    pub fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        let len = r.usize()?;
        if r.remaining() < len.saturating_mul(8) {
            // tin-lint: allow(hot-path-alloc): corrupt-checkpoint error path, not the streaming kernel
            return Err(r.corrupt(format!("truncated: {len} dense slots declared")));
        }
        // tin-lint: allow(hot-path-alloc): checkpoint restore path, not the streaming kernel
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(r.f64()?);
        }
        Ok(DenseProvenance { values })
    }
}

impl MemoryFootprint for DenseProvenance {
    fn footprint_bytes(&self) -> usize {
        vec_bytes(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::qty_approx_eq;

    #[test]
    fn zeros_and_dim() {
        let v = DenseProvenance::zeros(5);
        assert_eq!(v.dim(), 5);
        assert!(v.is_zero());
        assert_eq!(v.total(), 0.0);
    }

    #[test]
    fn add_at_and_get() {
        let mut v = DenseProvenance::zeros(3);
        v.add_at(1, 3.0);
        v.add_at(1, 2.0);
        assert_eq!(v.get(1), 5.0);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.total(), 5.0);
        assert!(!v.is_zero());
    }

    #[test]
    fn add_assign_componentwise() {
        let mut a = DenseProvenance::zeros(3);
        a.add_at(0, 1.0);
        let mut b = DenseProvenance::zeros(3);
        b.add_at(0, 2.0);
        b.add_at(2, 4.0);
        a.add_assign(&b);
        assert_eq!(a.get(0), 3.0);
        assert_eq!(a.get(2), 4.0);
    }

    #[test]
    fn drain_into_moves_everything() {
        let mut a = DenseProvenance::zeros(3);
        a.add_at(1, 3.0);
        let mut b = DenseProvenance::zeros(3);
        b.add_at(2, 1.0);
        a.drain_into(&mut b);
        assert!(a.is_zero());
        assert_eq!(b.get(1), 3.0);
        assert_eq!(b.get(2), 1.0);
        assert!(qty_approx_eq(b.total(), 4.0));
    }

    #[test]
    fn transfer_fraction_splits_proportionally() {
        // Reproduces the third interaction of Table 5: p_v0 = [0, 3, 2],
        // transfer 3 of 5 to p_v1.
        let mut p_v0 = DenseProvenance::zeros(3);
        p_v0.add_at(1, 3.0);
        p_v0.add_at(2, 2.0);
        let mut p_v1 = DenseProvenance::zeros(3);
        p_v0.transfer_fraction(&mut p_v1, 3.0 / 5.0);
        assert!(qty_approx_eq(p_v1.get(1), 1.8));
        assert!(qty_approx_eq(p_v1.get(2), 1.2));
        assert!(qty_approx_eq(p_v0.get(1), 1.2));
        assert!(qty_approx_eq(p_v0.get(2), 0.8));
        // Conservation.
        assert!(qty_approx_eq(p_v0.total() + p_v1.total(), 5.0));
    }

    #[test]
    fn transfer_full_fraction_equals_drain() {
        let mut a = DenseProvenance::zeros(4);
        a.add_at(3, 7.0);
        let mut b = DenseProvenance::zeros(4);
        a.transfer_fraction(&mut b, 1.0);
        assert!(a.is_zero());
        assert!(qty_approx_eq(b.get(3), 7.0));
    }

    #[test]
    fn nonzero_iterator_skips_zero_slots() {
        let mut v = DenseProvenance::zeros(4);
        v.add_at(0, 1.0);
        v.add_at(3, 2.0);
        let nz: Vec<(usize, f64)> = v.nonzero().collect();
        assert_eq!(nz, vec![(0, 1.0), (3, 2.0)]);
    }

    #[test]
    fn clear_resets() {
        let mut v = DenseProvenance::zeros(2);
        v.add_at(0, 5.0);
        v.clear();
        assert!(v.is_zero());
    }

    #[test]
    fn footprint_scales_with_dimension() {
        let small = DenseProvenance::zeros(10);
        let big = DenseProvenance::zeros(1000);
        assert!(big.footprint_bytes() > small.footprint_bytes());
        assert_eq!(big.footprint_bytes(), 1000 * std::mem::size_of::<f64>());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "transfer fraction")]
    fn transfer_fraction_rejects_out_of_range_in_debug() {
        let mut a = DenseProvenance::zeros(2);
        let mut b = DenseProvenance::zeros(2);
        a.transfer_fraction(&mut b, 1.5);
    }
}
