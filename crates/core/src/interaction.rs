//! Interactions: the quadruples ⟨r.s, r.d, r.t, r.q⟩ of Definition 1.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TinError};
use crate::ids::{Timestamp, VertexId};
use crate::quantity::{qty_is_valid_transfer, Quantity};

/// A single interaction `r ∈ R`: at time `r.t`, vertex `r.s` transfers
/// quantity `r.q` to vertex `r.d`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    /// Source vertex `r.s`.
    pub src: VertexId,
    /// Destination vertex `r.d`.
    pub dst: VertexId,
    /// Time `r.t` at which the interaction took place.
    pub time: Timestamp,
    /// Quantity `r.q` transferred from `src` to `dst`.
    pub qty: Quantity,
}

impl Interaction {
    /// Construct an interaction without validation.
    #[inline]
    pub fn new(
        src: impl Into<VertexId>,
        dst: impl Into<VertexId>,
        time: impl Into<Timestamp>,
        qty: Quantity,
    ) -> Self {
        Interaction {
            src: src.into(),
            dst: dst.into(),
            time: time.into(),
            qty,
        }
    }

    /// Construct an interaction, validating quantity, timestamp and the
    /// absence of a self-loop.
    pub fn try_new(
        src: impl Into<VertexId>,
        dst: impl Into<VertexId>,
        time: impl Into<Timestamp>,
        qty: Quantity,
    ) -> Result<Self> {
        let r = Self::new(src, dst, time, qty);
        r.validate(None)?;
        Ok(r)
    }

    /// Validate this interaction. `position` is the index in the stream, used
    /// only to produce better error messages.
    pub fn validate(&self, position: Option<usize>) -> Result<()> {
        if !qty_is_valid_transfer(self.qty) {
            return Err(TinError::InvalidQuantity {
                quantity: self.qty,
                position,
            });
        }
        if !self.time.0.is_finite() || self.time.0 < 0.0 {
            return Err(TinError::InvalidTimestamp {
                timestamp: self.time.0,
                position,
            });
        }
        if self.src == self.dst {
            return Err(TinError::SelfLoop {
                vertex: self.src,
                position,
            });
        }
        Ok(())
    }

    /// True when this interaction is well formed (see [`Interaction::validate`]).
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.validate(None).is_ok()
    }
}

/// Sort interactions in place by time (stable, so simultaneous interactions
/// keep their input order, matching the paper's "in order of time" processing).
pub fn sort_by_time(interactions: &mut [Interaction]) {
    interactions.sort_by_key(|a| a.time);
}

/// Check whether a slice of interactions is sorted by non-decreasing time.
pub fn is_sorted_by_time(interactions: &[Interaction]) -> bool {
    interactions.windows(2).all(|w| w[0].time <= w[1].time)
}

/// Validate a whole slice of interactions against a vertex-set size,
/// returning the first error found.
pub fn validate_stream(interactions: &[Interaction], num_vertices: usize) -> Result<()> {
    for (i, r) in interactions.iter().enumerate() {
        r.validate(Some(i))?;
        for v in [r.src, r.dst] {
            if v.index() >= num_vertices {
                return Err(TinError::UnknownVertex {
                    vertex: v,
                    num_vertices,
                });
            }
        }
    }
    Ok(())
}

/// The six-interaction running example of the paper (Figure 3), used by the
/// unit tests that reproduce Tables 2–5 and handy for doc examples.
///
/// ```
/// use tin_core::interaction::paper_running_example;
/// let r = paper_running_example();
/// assert_eq!(r.len(), 6);
/// assert_eq!(r[0].qty, 3.0);
/// ```
pub fn paper_running_example() -> Vec<Interaction> {
    vec![
        Interaction::new(1u32, 2u32, 1.0, 3.0),
        Interaction::new(2u32, 0u32, 3.0, 5.0),
        Interaction::new(0u32, 1u32, 4.0, 3.0),
        Interaction::new(1u32, 2u32, 5.0, 7.0),
        Interaction::new(2u32, 1u32, 7.0, 2.0),
        Interaction::new(2u32, 0u32, 8.0, 1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let r = Interaction::new(0u32, 1u32, 2.5, 10.0);
        assert_eq!(r.src, VertexId::new(0));
        assert_eq!(r.dst, VertexId::new(1));
        assert_eq!(r.time, Timestamp::new(2.5));
        assert_eq!(r.qty, 10.0);
    }

    #[test]
    fn try_new_accepts_valid() {
        assert!(Interaction::try_new(0u32, 1u32, 0.0, 0.5).is_ok());
    }

    #[test]
    fn try_new_rejects_zero_quantity() {
        let e = Interaction::try_new(0u32, 1u32, 1.0, 0.0).unwrap_err();
        assert!(matches!(e, TinError::InvalidQuantity { .. }));
    }

    #[test]
    fn try_new_rejects_negative_quantity() {
        let e = Interaction::try_new(0u32, 1u32, 1.0, -2.0).unwrap_err();
        assert!(matches!(e, TinError::InvalidQuantity { .. }));
    }

    #[test]
    fn try_new_rejects_nan_time() {
        let e = Interaction::try_new(0u32, 1u32, f64::NAN, 1.0).unwrap_err();
        assert!(matches!(e, TinError::InvalidTimestamp { .. }));
    }

    #[test]
    fn try_new_rejects_negative_time() {
        let e = Interaction::try_new(0u32, 1u32, -1.0, 1.0).unwrap_err();
        assert!(matches!(e, TinError::InvalidTimestamp { .. }));
    }

    #[test]
    fn try_new_rejects_self_loop() {
        let e = Interaction::try_new(3u32, 3u32, 1.0, 1.0).unwrap_err();
        assert!(matches!(e, TinError::SelfLoop { .. }));
    }

    #[test]
    fn sort_is_stable_for_ties() {
        let mut rs = vec![
            Interaction::new(0u32, 1u32, 2.0, 1.0),
            Interaction::new(1u32, 2u32, 1.0, 2.0),
            Interaction::new(2u32, 0u32, 2.0, 3.0),
        ];
        sort_by_time(&mut rs);
        assert!(is_sorted_by_time(&rs));
        // The two time-2.0 interactions keep their relative input order.
        assert_eq!(rs[1].qty, 1.0);
        assert_eq!(rs[2].qty, 3.0);
    }

    #[test]
    fn sorted_detection() {
        let rs = paper_running_example();
        assert!(is_sorted_by_time(&rs));
        let mut rev = rs.clone();
        rev.reverse();
        assert!(!is_sorted_by_time(&rev));
        assert!(is_sorted_by_time(&[]));
        assert!(is_sorted_by_time(&rs[..1]));
    }

    #[test]
    fn validate_stream_detects_unknown_vertex() {
        let rs = paper_running_example();
        assert!(validate_stream(&rs, 3).is_ok());
        let e = validate_stream(&rs, 2).unwrap_err();
        assert!(matches!(e, TinError::UnknownVertex { .. }));
    }

    #[test]
    fn validate_stream_reports_position() {
        let rs = vec![
            Interaction::new(0u32, 1u32, 1.0, 1.0),
            Interaction::new(0u32, 1u32, 2.0, -5.0),
        ];
        match validate_stream(&rs, 2).unwrap_err() {
            TinError::InvalidQuantity { position, .. } => assert_eq!(position, Some(1)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn running_example_matches_figure3() {
        let rs = paper_running_example();
        assert_eq!(rs.len(), 6);
        // Second interaction: v2 -> v0 at time 3 with quantity 5.
        assert_eq!(rs[1].src, VertexId::new(2));
        assert_eq!(rs[1].dst, VertexId::new(0));
        assert_eq!(rs[1].time.value(), 3.0);
        assert_eq!(rs[1].qty, 5.0);
        assert!(validate_stream(&rs, 3).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let r = Interaction::new(4u32, 5u32, 9.0, 2.25);
        let json = serde_json_like(&r);
        assert!(json.contains("4") && json.contains("2.25"));
    }

    /// Minimal smoke check that the Serialize impl works without pulling in
    /// serde_json as a dependency: serialize to a debug-ish string via
    /// serde's fmt machinery is not available, so just check Debug here and
    /// that the derive compiles.
    fn serde_json_like(r: &Interaction) -> String {
        format!("{r:?}")
    }
}
