//! Selection policies and tracker configuration.
//!
//! When an interaction transfers less than the buffered quantity at its
//! source (`|B_{r.s}| > r.q`), the *selection policy* decides which buffered
//! quantities are relayed (Section 4). The policy determines the provenance of
//! everything downstream, so each policy comes with its own tracking
//! mechanism; [`PolicyConfig`] is the declarative description that the
//! [`crate::tracker::build_tracker`] factory turns into a concrete tracker.

use serde::{Deserialize, Serialize};

use crate::ids::VertexId;

/// The selection policies defined in Section 4 of the paper, plus the
/// provenance-free baseline of Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Algorithm 1: propagate quantities without tracking provenance.
    NoProvenance,
    /// Section 4.1: transfer the least recently born quantities first.
    LeastRecentlyBorn,
    /// Section 4.1: transfer the most recently born quantities first.
    MostRecentlyBorn,
    /// Section 4.2: transfer in order of receipt (first in, first out).
    Fifo,
    /// Section 4.2: transfer in reverse order of receipt (last in, first out).
    Lifo,
    /// Section 4.3: transfer proportionally to each origin's contribution,
    /// dense `|V|`-length provenance vectors.
    ProportionalDense,
    /// Section 4.3: proportional transfer with sparse list representations.
    ProportionalSparse,
}

impl SelectionPolicy {
    /// Short, stable identifier used in benchmark output and CSV files.
    pub fn key(&self) -> &'static str {
        match self {
            SelectionPolicy::NoProvenance => "noprov",
            SelectionPolicy::LeastRecentlyBorn => "lrb",
            SelectionPolicy::MostRecentlyBorn => "mrb",
            SelectionPolicy::Fifo => "fifo",
            SelectionPolicy::Lifo => "lifo",
            SelectionPolicy::ProportionalDense => "prop_dense",
            SelectionPolicy::ProportionalSparse => "prop_sparse",
        }
    }

    /// Human-readable name, matching the column headers of Tables 7 and 8.
    pub fn label(&self) -> &'static str {
        match self {
            SelectionPolicy::NoProvenance => "No Provenance",
            SelectionPolicy::LeastRecentlyBorn => "Least Recently Born",
            SelectionPolicy::MostRecentlyBorn => "Most Recently Born",
            SelectionPolicy::Fifo => "FIFO",
            SelectionPolicy::Lifo => "LIFO",
            SelectionPolicy::ProportionalDense => "Proportional (dense)",
            SelectionPolicy::ProportionalSparse => "Proportional (sparse)",
        }
    }

    /// All policies, in the column order of Tables 7 and 8.
    pub fn all() -> [SelectionPolicy; 7] {
        [
            SelectionPolicy::NoProvenance,
            SelectionPolicy::LeastRecentlyBorn,
            SelectionPolicy::MostRecentlyBorn,
            SelectionPolicy::Lifo,
            SelectionPolicy::Fifo,
            SelectionPolicy::ProportionalDense,
            SelectionPolicy::ProportionalSparse,
        ]
    }
}

impl std::fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which entries a budget-constrained vertex keeps when its provenance list
/// exceeds the budget (Section 5.3.2: "the selection of entries to keep ...
/// can be done using different criteria").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ShrinkCriterion {
    /// Keep the entries with the largest quantities (the paper's running
    /// example and our default).
    #[default]
    KeepLargest,
    /// Keep the entries whose origins appear in a caller-supplied priority
    /// set ("set a priority/importance order to vertices").
    KeepImportant,
}

/// Full tracker configuration: a base policy plus the optional
/// scalability technique of Section 5 applied on top of proportional
/// selection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicyConfig {
    /// One of the plain policies of Section 4 (and Algorithm 1).
    Plain(SelectionPolicy),
    /// Selective proportional provenance (Section 5.1): track only the given
    /// vertices; everything else is attributed to a single "other" slot.
    Selective {
        /// The k vertices of interest.
        tracked: Vec<VertexId>,
    },
    /// Grouped proportional provenance (Section 5.2): track provenance from
    /// groups of vertices. `group_of[v]` maps each vertex to its group index
    /// in `0..num_groups`.
    Grouped {
        /// Number of groups m.
        num_groups: usize,
        /// Mapping from vertex index to group index.
        group_of: Vec<u32>,
    },
    /// Windowed proportional provenance (Section 5.3.1) over sparse lists.
    Windowed {
        /// Window length W in number of interactions.
        window: usize,
    },
    /// Time-based windowed proportional provenance: like [`Self::Windowed`],
    /// but the window is a duration in the timestamp unit of the stream
    /// rather than an interaction count.
    TimeWindowed {
        /// Window duration D in time units.
        duration: f64,
    },
    /// Proportional provenance with the runtime-adaptive representation of
    /// [`crate::adaptive_vec`]: every vector starts as a sparse list and
    /// promotes to a dense SIMD vector once its length reaches
    /// `dense_threshold · |V|` (demoting again on window resets and budget
    /// shrinks). Semantically identical to the plain proportional policies;
    /// only the representation — and therefore the cost profile — differs.
    AdaptiveProportional {
        /// List density (fraction of `|V|`, in `(0, 1]`) at which a vector
        /// switches to the dense representation.
        dense_threshold: f64,
    },
    /// Budget-based proportional provenance (Section 5.3.2) over sparse lists.
    Budgeted {
        /// Maximum number of provenance entries per vertex (budget C).
        capacity: usize,
        /// Fraction f of the budget kept after a shrink (0 < f ≤ 1).
        keep_fraction: f64,
        /// Criterion used to choose which entries survive a shrink.
        criterion: ShrinkCriterion,
        /// Origins considered important under [`ShrinkCriterion::KeepImportant`].
        important: Vec<VertexId>,
    },
    /// Path tracking (how-provenance, Section 6) on top of a receipt-order
    /// policy. `lifo = true` reproduces the paper's Table 10 configuration.
    PathTracking {
        /// Use LIFO (true) or FIFO (false) as the underlying policy.
        lifo: bool,
    },
    /// Path tracking (how-provenance, Section 6) on top of a generation-time
    /// policy (Section 4.1).
    GenerationPaths {
        /// Use most-recently-born (true) or least-recently-born (false) as the
        /// underlying policy.
        most_recent: bool,
    },
}

impl PolicyConfig {
    /// Short, stable identifier used in benchmark output.
    pub fn key(&self) -> String {
        match self {
            PolicyConfig::Plain(p) => p.key().to_string(),
            PolicyConfig::Selective { tracked } => format!("selective_k{}", tracked.len()),
            PolicyConfig::Grouped { num_groups, .. } => format!("grouped_m{num_groups}"),
            PolicyConfig::Windowed { window } => format!("windowed_w{window}"),
            PolicyConfig::TimeWindowed { duration } => format!("timewindowed_d{duration}"),
            PolicyConfig::AdaptiveProportional { dense_threshold } => {
                format!("prop_adaptive_t{dense_threshold}")
            }
            PolicyConfig::Budgeted { capacity, .. } => format!("budget_c{capacity}"),
            PolicyConfig::PathTracking { lifo } => {
                format!("paths_{}", if *lifo { "lifo" } else { "fifo" })
            }
            PolicyConfig::GenerationPaths { most_recent } => {
                format!("paths_{}", if *most_recent { "mrb" } else { "lrb" })
            }
        }
    }

    /// Default adaptive-representation proportional configuration
    /// (promotion at the [`crate::adaptive_vec::DEFAULT_DENSE_THRESHOLD`]
    /// list density).
    pub fn adaptive() -> Self {
        PolicyConfig::AdaptiveProportional {
            dense_threshold: crate::adaptive_vec::DEFAULT_DENSE_THRESHOLD,
        }
    }

    /// Default budget configuration used by the paper's experiments
    /// (keep-largest, f = 0.7 — the paper suggests f between 0.6 and 0.8).
    pub fn budget(capacity: usize) -> Self {
        PolicyConfig::Budgeted {
            capacity,
            keep_fraction: 0.7,
            criterion: ShrinkCriterion::KeepLargest,
            important: Vec::new(),
        }
    }

    /// Append the binary encoding used by checkpoint headers (see
    /// [`crate::checkpoint`]). Exact inverse of [`Self::decode_from`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_bool, put_f64, put_u32, put_u8, put_usize};
        match self {
            PolicyConfig::Plain(p) => {
                put_u8(out, 0);
                let tag = match p {
                    SelectionPolicy::NoProvenance => 0,
                    SelectionPolicy::LeastRecentlyBorn => 1,
                    SelectionPolicy::MostRecentlyBorn => 2,
                    SelectionPolicy::Fifo => 3,
                    SelectionPolicy::Lifo => 4,
                    SelectionPolicy::ProportionalDense => 5,
                    SelectionPolicy::ProportionalSparse => 6,
                };
                put_u8(out, tag);
            }
            PolicyConfig::Selective { tracked } => {
                put_u8(out, 1);
                put_usize(out, tracked.len());
                for v in tracked {
                    put_u32(out, v.raw());
                }
            }
            PolicyConfig::Grouped {
                num_groups,
                group_of,
            } => {
                put_u8(out, 2);
                put_usize(out, *num_groups);
                put_usize(out, group_of.len());
                for g in group_of {
                    put_u32(out, *g);
                }
            }
            PolicyConfig::Windowed { window } => {
                put_u8(out, 3);
                put_usize(out, *window);
            }
            PolicyConfig::TimeWindowed { duration } => {
                put_u8(out, 4);
                put_f64(out, *duration);
            }
            PolicyConfig::AdaptiveProportional { dense_threshold } => {
                put_u8(out, 5);
                put_f64(out, *dense_threshold);
            }
            PolicyConfig::Budgeted {
                capacity,
                keep_fraction,
                criterion,
                important,
            } => {
                put_u8(out, 6);
                put_usize(out, *capacity);
                put_f64(out, *keep_fraction);
                put_u8(
                    out,
                    match criterion {
                        ShrinkCriterion::KeepLargest => 0,
                        ShrinkCriterion::KeepImportant => 1,
                    },
                );
                put_usize(out, important.len());
                for v in important {
                    put_u32(out, v.raw());
                }
            }
            PolicyConfig::PathTracking { lifo } => {
                put_u8(out, 7);
                put_bool(out, *lifo);
            }
            PolicyConfig::GenerationPaths { most_recent } => {
                put_u8(out, 8);
                put_bool(out, *most_recent);
            }
        }
    }

    /// Decode a configuration written by [`Self::encode_into`].
    pub fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => {
                let p = match r.u8()? {
                    0 => SelectionPolicy::NoProvenance,
                    1 => SelectionPolicy::LeastRecentlyBorn,
                    2 => SelectionPolicy::MostRecentlyBorn,
                    3 => SelectionPolicy::Fifo,
                    4 => SelectionPolicy::Lifo,
                    5 => SelectionPolicy::ProportionalDense,
                    6 => SelectionPolicy::ProportionalSparse,
                    other => return Err(r.corrupt(format!("unknown selection policy {other}"))),
                };
                PolicyConfig::Plain(p)
            }
            1 => {
                let len = r.usize()?;
                let mut tracked = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    tracked.push(VertexId::new(r.u32()?));
                }
                PolicyConfig::Selective { tracked }
            }
            2 => {
                let num_groups = r.usize()?;
                let len = r.usize()?;
                let mut group_of = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    group_of.push(r.u32()?);
                }
                PolicyConfig::Grouped {
                    num_groups,
                    group_of,
                }
            }
            3 => PolicyConfig::Windowed { window: r.usize()? },
            4 => PolicyConfig::TimeWindowed { duration: r.f64()? },
            5 => PolicyConfig::AdaptiveProportional {
                dense_threshold: r.f64()?,
            },
            6 => {
                let capacity = r.usize()?;
                let keep_fraction = r.f64()?;
                let criterion = match r.u8()? {
                    0 => ShrinkCriterion::KeepLargest,
                    1 => ShrinkCriterion::KeepImportant,
                    other => return Err(r.corrupt(format!("unknown shrink criterion {other}"))),
                };
                let len = r.usize()?;
                let mut important = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    important.push(VertexId::new(r.u32()?));
                }
                PolicyConfig::Budgeted {
                    capacity,
                    keep_fraction,
                    criterion,
                    important,
                }
            }
            7 => PolicyConfig::PathTracking { lifo: r.bool()? },
            8 => PolicyConfig::GenerationPaths {
                most_recent: r.bool()?,
            },
            other => return Err(r.corrupt(format!("unknown policy config tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_keys_are_unique() {
        let keys: std::collections::HashSet<&str> =
            SelectionPolicy::all().iter().map(|p| p.key()).collect();
        assert_eq!(keys.len(), SelectionPolicy::all().len());
    }

    #[test]
    fn policy_labels_match_paper_headers() {
        assert_eq!(SelectionPolicy::NoProvenance.label(), "No Provenance");
        assert_eq!(
            SelectionPolicy::ProportionalDense.label(),
            "Proportional (dense)"
        );
        assert_eq!(SelectionPolicy::Lifo.to_string(), "LIFO");
    }

    #[test]
    fn config_keys() {
        assert_eq!(
            PolicyConfig::Plain(SelectionPolicy::Fifo).key(),
            "fifo".to_string()
        );
        assert_eq!(
            PolicyConfig::Selective {
                tracked: vec![VertexId::new(1), VertexId::new(2)]
            }
            .key(),
            "selective_k2"
        );
        assert_eq!(
            PolicyConfig::Grouped {
                num_groups: 10,
                group_of: vec![]
            }
            .key(),
            "grouped_m10"
        );
        assert_eq!(
            PolicyConfig::Windowed { window: 100 }.key(),
            "windowed_w100"
        );
        assert_eq!(
            PolicyConfig::TimeWindowed { duration: 3.5 }.key(),
            "timewindowed_d3.5"
        );
        assert_eq!(PolicyConfig::budget(50).key(), "budget_c50");
        assert_eq!(
            PolicyConfig::AdaptiveProportional {
                dense_threshold: 0.5
            }
            .key(),
            "prop_adaptive_t0.5"
        );
        assert_eq!(PolicyConfig::adaptive().key(), "prop_adaptive_t0.5");
        assert_eq!(
            PolicyConfig::PathTracking { lifo: true }.key(),
            "paths_lifo"
        );
    }

    #[test]
    fn default_budget_parameters() {
        if let PolicyConfig::Budgeted {
            capacity,
            keep_fraction,
            criterion,
            important,
        } = PolicyConfig::budget(100)
        {
            assert_eq!(capacity, 100);
            assert!((0.6..=0.8).contains(&keep_fraction));
            assert_eq!(criterion, ShrinkCriterion::KeepLargest);
            assert!(important.is_empty());
        } else {
            panic!("budget() must build a Budgeted config");
        }
    }

    #[test]
    fn shrink_criterion_default() {
        assert_eq!(ShrinkCriterion::default(), ShrinkCriterion::KeepLargest);
    }

    #[test]
    fn binary_codec_round_trips_every_variant() {
        let configs = vec![
            PolicyConfig::Plain(SelectionPolicy::NoProvenance),
            PolicyConfig::Plain(SelectionPolicy::LeastRecentlyBorn),
            PolicyConfig::Plain(SelectionPolicy::MostRecentlyBorn),
            PolicyConfig::Plain(SelectionPolicy::Fifo),
            PolicyConfig::Plain(SelectionPolicy::Lifo),
            PolicyConfig::Plain(SelectionPolicy::ProportionalDense),
            PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
            PolicyConfig::Selective {
                tracked: vec![VertexId::new(0), VertexId::new(3)],
            },
            PolicyConfig::Grouped {
                num_groups: 3,
                group_of: vec![0, 1, 2, 0, 1],
            },
            PolicyConfig::Windowed { window: 5 },
            PolicyConfig::TimeWindowed { duration: 7.5 },
            PolicyConfig::adaptive(),
            PolicyConfig::budget(3),
            PolicyConfig::Budgeted {
                capacity: 8,
                keep_fraction: 0.6,
                criterion: ShrinkCriterion::KeepImportant,
                important: vec![VertexId::new(2)],
            },
            PolicyConfig::PathTracking { lifo: true },
            PolicyConfig::PathTracking { lifo: false },
            PolicyConfig::GenerationPaths { most_recent: true },
        ];
        for config in configs {
            let mut buf = Vec::new();
            config.encode_into(&mut buf);
            let mut r = crate::codec::ByteReader::new(&buf, "policy");
            let decoded = PolicyConfig::decode_from(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(decoded, config);
        }
    }

    #[test]
    fn codec_rejects_unknown_tag() {
        let mut r = crate::codec::ByteReader::new(&[0xFF], "policy");
        assert!(matches!(
            PolicyConfig::decode_from(&mut r),
            Err(crate::TinError::CorruptCheckpoint { .. })
        ));
    }
}
