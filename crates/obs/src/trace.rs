//! The span flight recorder: a bounded, pre-allocated ring of timestamped
//! spans exportable as Chrome trace-event JSON.
//!
//! Spans carry a `&'static str` name, a track id (`tid`; the engines use 0
//! for the main thread and `shard + 1` for workers) and nanosecond offsets
//! from a shared epoch [`std::time::Instant`]. The epoch is `Copy + Send`,
//! so shard workers record against the same clock as the main thread and
//! their spans line up on one timeline. Recording never reallocates: the
//! event buffer is reserved up front and events past the capacity are
//! counted as dropped (keeping the earliest events, which is what you want
//! when diagnosing a run's warm-up and steady state).

use std::time::Instant;

/// One completed span on the shared timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (a static label: `"wavefront_dispatch"`, `"checkpoint"`…).
    pub name: &'static str,
    /// Track id: 0 for the main thread, `shard + 1` for shard workers.
    pub tid: u32,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

/// A bounded flight recorder of [`SpanEvent`]s.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

impl Recorder {
    /// An empty recorder holding at most `capacity` events, with its epoch
    /// set to now.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Recorder::with_epoch(capacity, Instant::now())
    }

    /// An empty recorder measuring offsets from an existing `epoch` — how a
    /// shard worker's private recorder shares the main thread's timeline.
    #[must_use]
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        Recorder {
            epoch,
            events: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// The instant all span offsets are measured from.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Record a span that started at `started` (an `Instant::now()` taken
    /// before the work) and ends now. Allocation-free.
    #[inline]
    pub fn record(&mut self, name: &'static str, tid: u32, started: Instant) {
        let start_ns = duration_ns(self.epoch, started);
        let dur_ns = duration_ns(started, Instant::now());
        self.push(SpanEvent {
            name,
            tid,
            start_ns,
            dur_ns,
        });
    }

    /// Append one already-built event. Allocation-free; past capacity the
    /// event is counted as dropped instead.
    #[inline]
    pub fn push(&mut self, event: SpanEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Append a batch of events (a shard worker's delta shipped at a sync
    /// barrier).
    pub fn extend_from(&mut self, events: &[SpanEvent]) {
        for e in events {
            self.push(*e);
        }
    }

    /// Recorded events, in arrival order.
    #[must_use]
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events discarded because the recorder was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of events the recorder holds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop all recorded events (keeping epoch and capacity) — how a shard
    /// worker empties its recorder after shipping a delta at a sync barrier.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Render as Chrome trace-event JSON: a `traceEvents` array of complete
    /// (`"ph": "X"`) events with microsecond timestamps, loadable in
    /// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. The
    /// `otherData` object records how many events were dropped.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\n\"traceEvents\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Chrome's ts/dur are microseconds; keep fractional precision
            // so sub-microsecond spans stay visible.
            out.push_str(&format!(
                "\n  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
                e.name,
                e.tid,
                format_us(e.start_ns),
                format_us(e.dur_ns)
            ));
        }
        out.push_str(&format!(
            "\n],\n\"otherData\": {{\"dropped_events\": {}}}\n}}\n",
            self.dropped
        ));
        out
    }
}

/// Nanoseconds from `earlier` to `later` (saturating at zero, like
/// `Instant::duration_since`).
#[inline]
fn duration_ns(earlier: Instant, later: Instant) -> u64 {
    later
        .duration_since(earlier)
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// Nanoseconds as a decimal microsecond literal (`1234` ns → `1.234`).
fn format_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_against_a_shared_epoch() {
        let mut main = Recorder::new(16);
        let mut worker = Recorder::with_epoch(16, main.epoch());
        let t0 = Instant::now();
        main.record("dispatch", 0, t0);
        worker.record("batch", 1, t0);
        main.extend_from(worker.events());
        assert_eq!(main.events().len(), 2);
        assert_eq!(main.events()[0].name, "dispatch");
        assert_eq!(main.events()[1].tid, 1);
        // Same start instant, same epoch: identical offsets.
        assert_eq!(main.events()[0].start_ns, main.events()[1].start_ns);
    }

    #[test]
    fn capacity_bounds_are_enforced_without_reallocation() {
        let mut r = Recorder::new(2);
        for i in 0..5u32 {
            r.push(SpanEvent {
                name: "x",
                tid: i,
                start_ns: u64::from(i),
                dur_ns: 1,
            });
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped(), 3);
        // The earliest events were kept.
        assert_eq!(r.events()[0].tid, 0);
        assert_eq!(r.events()[1].tid, 1);
    }

    #[test]
    fn chrome_trace_has_the_required_shape() {
        let mut r = Recorder::new(4);
        r.push(SpanEvent {
            name: "checkpoint",
            tid: 0,
            start_ns: 1_234_567,
            dur_ns: 890,
        });
        let json = r.to_chrome_trace();
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"name\": \"checkpoint\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ts\": 1234.567"));
        assert!(json.contains("\"dur\": 0.890"));
        assert!(json.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let json = Recorder::new(0).to_chrome_trace();
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn duration_offsets_saturate_instead_of_panicking() {
        let later = Instant::now();
        // An epoch *after* the span start must clamp to zero, not panic.
        let r = Recorder::with_epoch(4, later);
        let mut r = r;
        r.record("early", 0, later - std::time::Duration::from_millis(5));
        assert_eq!(r.events()[0].start_ns, 0);
        assert!(r.events()[0].dur_ns >= 5_000_000);
    }
}
