//! A minimal JSON reader/writer helper for the telemetry tooling.
//!
//! The build environment is offline (no `serde_json`), but the telemetry
//! pipeline needs both directions: the emitters escape strings into
//! hand-built documents, and `tin-cli report` parses the JSONL stream back.
//! This module is the dependency-free middle ground: [`escape`] for writers
//! and a small recursive-descent [`Value`] parser for readers. It accepts
//! strict JSON (no comments, no trailing commas) — exactly what the crate's
//! own emitters produce.

use std::collections::BTreeMap;

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers are kept as `f64` — large enough for every
/// quantity the telemetry stream carries (nanosecond sums stay below 2^53
/// for runs shorter than ~104 days).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalised (sorted) by the map.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parse a complete JSON document.
    ///
    /// # Errors
    /// Returns a human-readable message (with byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to `u64`, if this is a non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let parsed = Value::parse(&doc).unwrap();
        assert_eq!(parsed.get("k").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"schema": 2, "ok": true, "none": null,
                      "nums": [1, -2.5, 1e3],
                      "inner": {"name": "latency_ns", "p99": 1234}}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let nums = v.get("nums").and_then(Value::as_arr).unwrap();
        assert_eq!(nums[1].as_f64(), Some(-2.5));
        assert_eq!(nums[2].as_f64(), Some(1000.0));
        let inner = v.get("inner").unwrap();
        assert_eq!(inner.get("p99").and_then(Value::as_u64), Some(1234));
        assert_eq!(inner.as_obj().unwrap().len(), 2);
    }

    #[test]
    fn parses_own_snapshot_export() {
        let mut r = crate::Registry::new();
        let c = r.counter("events_total", "count");
        r.add(c, 3);
        let h = r.histogram("latency_ns", "ns");
        r.observe(h, 1000);
        let v = Value::parse(&r.snapshot().to_json()).unwrap();
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters
                .get("events_total")
                .and_then(|c| c.get("value"))
                .and_then(Value::as_u64),
            Some(3)
        );
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("latency_ns"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"abc",
            "{\"a\":}",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
