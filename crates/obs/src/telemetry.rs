//! Live telemetry streaming: delta-encoded snapshot records as JSONL.
//!
//! `--metrics-out` exports a snapshot *after* the run; a long-running
//! deployment needs to be scraped *during* it. [`Telemetry`] wraps any
//! `Write + Send` sink (a file, a pipe) and emits one self-describing JSON
//! record per line every time an engine calls [`Telemetry::emit`] — the
//! engines do so every N interactions and at every sync barrier. The first
//! record is a `full` dump (names, units, absolute values); subsequent
//! records are `delta`-encoded against the previous snapshot: counters and
//! histogram count/sum carry the change since the last record, while gauges
//! and histogram quantiles carry current absolutes (a delta of a quantile
//! is meaningless). Every record repeats the metric names, so a reader can
//! join the stream mid-flight at any `full` record and follow deltas from
//! the next one it fully observed.
//!
//! The stream is consumed by `tin-cli report` (latency quantiles, the
//! imbalance trajectory, the top-K hub table) and validated line-by-line by
//! the CI smoke step.

use std::io::Write;

use crate::json::escape;
use crate::metrics::MetricsSnapshot;

/// Version tag stamped on every telemetry record.
pub const TELEMETRY_SCHEMA: u32 = 1;

/// A streaming JSONL sink for [`MetricsSnapshot`] records.
///
/// The sink is flushed after every record so a reader on the other end of a
/// pipe sees each record as soon as it is emitted.
pub struct Telemetry {
    sink: Box<dyn Write + Send>,
    seq: u64,
    prev: Option<MetricsSnapshot>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Wrap an arbitrary sink (a pipe, an in-memory buffer in tests,
    /// `std::io::sink()` in benchmarks).
    #[must_use]
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        Telemetry {
            sink,
            seq: 0,
            prev: None,
        }
    }

    /// Create (truncate) `path` and stream records into it, buffered.
    ///
    /// # Errors
    /// Propagates the file-creation error.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Telemetry::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Number of records emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Emit one record for `snap`, taken after `at` interactions from
    /// `source` (`"interval"`, `"barrier"` or `"final"`). The first record
    /// — and any record whose metric layout no longer matches the previous
    /// one — is emitted as `kind: "full"`; the rest as `kind: "delta"`.
    ///
    /// # Errors
    /// Propagates sink write/flush failures.
    pub fn emit(&mut self, at: u64, source: &str, snap: &MetricsSnapshot) -> std::io::Result<()> {
        let line = match &self.prev {
            Some(prev) if same_layout(prev, snap) => self.delta_record(at, source, snap, prev),
            _ => self.full_record(at, source, snap),
        };
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.sink.flush()?;
        self.seq += 1;
        self.prev = Some(snap.clone());
        Ok(())
    }

    fn header(&self, kind: &str, at: u64, source: &str) -> String {
        format!(
            "{{\"schema\": {TELEMETRY_SCHEMA}, \"kind\": \"{kind}\", \"seq\": {}, \"at\": {at}, \"source\": \"{}\"",
            self.seq,
            escape(source)
        )
    }

    fn full_record(&self, at: u64, source: &str, snap: &MetricsSnapshot) -> String {
        let mut out = self.header("full", at, source);
        out.push_str(", \"counters\": {");
        push_members(
            &mut out,
            snap.counters.iter().map(|c| {
                (
                    c.name,
                    format!("{{\"unit\": \"{}\", \"value\": {}}}", c.unit, c.value),
                )
            }),
        );
        out.push_str("}, \"gauges\": {");
        push_members(
            &mut out,
            snap.gauges.iter().map(|g| {
                (
                    g.name,
                    format!(
                    "{{\"unit\": \"{}\", \"last\": {}, \"min\": {}, \"max\": {}, \"samples\": {}}}",
                    g.unit, g.last, g.min, g.max, g.samples
                ),
                )
            }),
        );
        out.push_str("}, \"histograms\": {");
        push_members(&mut out, snap.histograms.iter().map(|h| {
            (
                h.name,
                format!(
                    "{{\"unit\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    h.unit, h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                ),
            )
        }));
        out.push('}');
        push_shared_tail(&mut out, snap);
        out.push('}');
        out
    }

    fn delta_record(
        &self,
        at: u64,
        source: &str,
        snap: &MetricsSnapshot,
        prev: &MetricsSnapshot,
    ) -> String {
        let mut out = self.header("delta", at, source);
        out.push_str(", \"counters\": {");
        push_members(
            &mut out,
            snap.counters
                .iter()
                .zip(prev.counters.iter())
                .map(|(c, p)| (c.name, format!("{}", c.value.saturating_sub(p.value)))),
        );
        // Gauges are levels: the current value is the interesting one.
        out.push_str("}, \"gauges\": {");
        push_members(
            &mut out,
            snap.gauges.iter().map(|g| (g.name, format!("{}", g.last))),
        );
        // Histograms: count/sum as deltas (mergeable), quantiles absolute
        // (a reader cannot reconstruct them from deltas at this resolution).
        out.push_str("}, \"histograms\": {");
        push_members(
            &mut out,
            snap.histograms.iter().zip(prev.histograms.iter()).map(|(h, p)| {
                (
                    h.name,
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        h.count.saturating_sub(p.count),
                        h.sum.saturating_sub(p.sum),
                        h.max,
                        h.p50,
                        h.p90,
                        h.p99
                    ),
                )
            }),
        );
        out.push('}');
        push_shared_tail(&mut out, snap);
        out.push('}');
        out
    }
}

/// Delta encoding matches metrics by position; a layout change (engine
/// rebuilt mid-stream) falls back to a fresh `full` record.
fn same_layout(a: &MetricsSnapshot, b: &MetricsSnapshot) -> bool {
    a.counters.len() == b.counters.len()
        && a.gauges.len() == b.gauges.len()
        && a.histograms.len() == b.histograms.len()
        && a.counters
            .iter()
            .zip(b.counters.iter())
            .all(|(x, y)| x.name == y.name)
        && a.gauges
            .iter()
            .zip(b.gauges.iter())
            .all(|(x, y)| x.name == y.name)
        && a.histograms
            .iter()
            .zip(b.histograms.iter())
            .all(|(x, y)| x.name == y.name)
}

fn push_members(out: &mut String, members: impl Iterator<Item = (&'static str, String)>) {
    for (i, (name, value)) in members.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {value}"));
    }
}

/// Trace stats and skew sketches ride on every record as absolutes: both
/// are small, and the sketch's entry set changes between records.
fn push_shared_tail(out: &mut String, snap: &MetricsSnapshot) {
    out.push_str(", \"trace\": ");
    match &snap.trace {
        Some(t) => out.push_str(&format!(
            "{{\"capacity\": {}, \"recorded\": {}, \"dropped\": {}}}",
            t.capacity, t.recorded, t.dropped
        )),
        None => out.push_str("null"),
    }
    for (key, entries) in [
        ("hot_vertices", &snap.hot_vertices),
        ("hot_migrations", &snap.hot_migrations),
    ] {
        out.push_str(&format!(", \"{key}\": ["));
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"key\": {}, \"weight\": {}, \"error\": {}}}",
                e.key, e.weight, e.error
            ));
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::Obs;
    use std::sync::{Arc, Mutex};

    /// A sink the test can read back after handing it to the Telemetry box.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lines(buf: &SharedBuf) -> Vec<Value> {
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("every record is one valid JSON line"))
            .collect()
    }

    #[test]
    fn first_record_is_full_then_deltas() {
        let mut obs = Obs::new();
        let c = obs.metrics.counter("events_total", "count");
        let g = obs.metrics.gauge("depth_total", "messages");
        let h = obs.metrics.histogram("latency_ns", "ns");
        let buf = SharedBuf::default();
        let mut tel = Telemetry::new(Box::new(buf.clone()));

        obs.metrics.add(c, 5);
        obs.metrics.set_gauge(g, 2);
        obs.metrics.observe(h, 100);
        obs.hot_vertices.offer(7, 3);
        tel.emit(10, "interval", &obs.snapshot()).unwrap();

        obs.metrics.add(c, 2);
        obs.metrics.set_gauge(g, 9);
        obs.metrics.observe(h, 300);
        tel.emit(20, "barrier", &obs.snapshot()).unwrap();
        assert_eq!(tel.emitted(), 2);

        let records = lines(&buf);
        assert_eq!(records.len(), 2);
        let full = &records[0];
        assert_eq!(full.get("kind").and_then(Value::as_str), Some("full"));
        assert_eq!(full.get("seq").and_then(Value::as_u64), Some(0));
        assert_eq!(full.get("at").and_then(Value::as_u64), Some(10));
        assert_eq!(full.get("source").and_then(Value::as_str), Some("interval"));
        let counters = full.get("counters").unwrap();
        assert_eq!(
            counters
                .get("events_total")
                .and_then(|c| c.get("value"))
                .and_then(Value::as_u64),
            Some(5)
        );
        let trace = full.get("trace").unwrap();
        assert_eq!(trace.get("dropped").and_then(Value::as_u64), Some(0));
        let hot = full.get("hot_vertices").and_then(Value::as_arr).unwrap();
        assert_eq!(hot[0].get("key").and_then(Value::as_u64), Some(7));

        let delta = &records[1];
        assert_eq!(delta.get("kind").and_then(Value::as_str), Some("delta"));
        assert_eq!(delta.get("source").and_then(Value::as_str), Some("barrier"));
        // Counter carries the change, gauge the current level.
        assert_eq!(
            delta
                .get("counters")
                .and_then(|c| c.get("events_total"))
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            delta
                .get("gauges")
                .and_then(|g| g.get("depth_total"))
                .and_then(Value::as_u64),
            Some(9)
        );
        let hist = delta
            .get("histograms")
            .and_then(|h| h.get("latency_ns"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(hist.get("sum").and_then(Value::as_u64), Some(300));
        assert_eq!(hist.get("max").and_then(Value::as_u64), Some(300));
    }

    #[test]
    fn layout_change_falls_back_to_full() {
        let buf = SharedBuf::default();
        let mut tel = Telemetry::new(Box::new(buf.clone()));
        let mut a = crate::Registry::new();
        a.counter("a_total", "count");
        tel.emit(1, "interval", &a.snapshot()).unwrap();
        let mut b = crate::Registry::new();
        b.counter("b_total", "count");
        tel.emit(2, "interval", &b.snapshot()).unwrap();
        let records = lines(&buf);
        assert_eq!(records[1].get("kind").and_then(Value::as_str), Some("full"));
    }
}
