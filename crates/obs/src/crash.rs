//! Black-box crash forensics: a self-contained post-mortem directory.
//!
//! When a run dies — a worker is lost, the recovery budget drains, a
//! checkpoint turns out corrupt — everything the flight recorder and the
//! metrics registry learned used to die with it. A [`CrashReport`] bundles
//! the terminal state into one directory:
//!
//! ```text
//! <dir>/report.json    # failure reason, stream position, chaos plan echo
//! <dir>/metrics.json   # final MetricsSnapshot (schema 2)
//! <dir>/trace.json     # flight recorder as Chrome trace JSON (Perfetto)
//! ```
//!
//! Every field in `report.json` is deterministic given the run
//! configuration, so chaos drills can assert on the report byte-for-byte
//! where it matters (reason, plan echo, processed count). Writing is best
//! effort by design: the caller reports the *original* failure to the user
//! and must not let a forensics I/O error mask it.

use std::path::{Path, PathBuf};

use crate::json::escape;
use crate::metrics::MetricsSnapshot;

/// Metadata of the newest durable checkpoint that survived the crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// File name (not the full path) of the checkpoint inside its store.
    pub file: String,
    /// Size of the checkpoint file in bytes.
    pub bytes: u64,
}

/// Everything a post-mortem needs, gathered on the terminal failure path.
#[derive(Debug, Default)]
pub struct CrashReport {
    /// Human-readable failure reason (the `TinError` display).
    pub failure_reason: String,
    /// Interactions fully processed before the failure.
    pub processed_interactions: u64,
    /// Policy key of the crashed run.
    pub policy: String,
    /// Shard count of the crashed run.
    pub shards: u64,
    /// The chaos plan, echoed verbatim, when fault injection was armed.
    pub chaos_plan: Option<String>,
    /// The chaos victim-selection seed, when fault injection was armed.
    pub chaos_seed: Option<u64>,
    /// Newest durable checkpoint left behind, if checkpoints were on.
    pub last_checkpoint: Option<CheckpointMeta>,
    /// Final metrics snapshot, when observability was attached.
    pub metrics: Option<MetricsSnapshot>,
    /// Flight recorder rendered as Chrome trace JSON, when attached.
    pub trace_json: Option<String>,
}

impl CrashReport {
    /// Render `report.json` (deterministic member order).
    #[must_use]
    pub fn report_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"schema\": 1,\n");
        out.push_str(&format!(
            "  \"failure_reason\": \"{}\",\n",
            escape(&self.failure_reason)
        ));
        out.push_str(&format!(
            "  \"processed_interactions\": {},\n",
            self.processed_interactions
        ));
        out.push_str(&format!("  \"policy\": \"{}\",\n", escape(&self.policy)));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        match &self.chaos_plan {
            Some(plan) => {
                out.push_str(&format!("  \"chaos_plan\": \"{}\",\n", escape(plan)));
            }
            None => out.push_str("  \"chaos_plan\": null,\n"),
        }
        match self.chaos_seed {
            Some(seed) => out.push_str(&format!("  \"chaos_seed\": {seed},\n")),
            None => out.push_str("  \"chaos_seed\": null,\n"),
        }
        match &self.last_checkpoint {
            Some(meta) => out.push_str(&format!(
                "  \"last_checkpoint\": {{\"file\": \"{}\", \"bytes\": {}}},\n",
                escape(&meta.file),
                meta.bytes
            )),
            None => out.push_str("  \"last_checkpoint\": null,\n"),
        }
        out.push_str(&format!(
            "  \"metrics_file\": {},\n",
            if self.metrics.is_some() {
                "\"metrics.json\""
            } else {
                "null"
            }
        ));
        out.push_str(&format!(
            "  \"trace_file\": {}\n",
            if self.trace_json.is_some() {
                "\"trace.json\""
            } else {
                "null"
            }
        ));
        out.push_str("}\n");
        out
    }

    /// Write the report directory: `report.json` always, `metrics.json` and
    /// `trace.json` when the run had observability attached. Creates `dir`
    /// (and parents) as needed; existing files are overwritten so repeated
    /// drills into the same directory stay self-consistent.
    ///
    /// # Errors
    /// Propagates directory-creation and file-write failures. Callers on a
    /// failure path should treat this as best effort and keep reporting the
    /// original error.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let report_path = dir.join("report.json");
        std::fs::write(&report_path, self.report_json())?;
        written.push(report_path);
        if let Some(metrics) = &self.metrics {
            let path = dir.join("metrics.json");
            std::fs::write(&path, metrics.to_json())?;
            written.push(path);
        }
        if let Some(trace) = &self.trace_json {
            let path = dir.join("trace.json");
            std::fs::write(&path, trace)?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::Obs;

    fn temp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tin_obs_crash_{}_{name}", std::process::id()))
    }

    #[test]
    fn report_json_is_deterministic_and_parseable() {
        let report = CrashReport {
            failure_reason: "worker thread for shard 1 was lost".into(),
            processed_interactions: 450,
            policy: "prop_sparse".into(),
            shards: 2,
            chaos_plan: Some("kill-worker@450".into()),
            chaos_seed: Some(7),
            last_checkpoint: Some(CheckpointMeta {
                file: "ckpt-400.tin".into(),
                bytes: 1234,
            }),
            metrics: None,
            trace_json: None,
        };
        assert_eq!(report.report_json(), report.report_json());
        let v = Value::parse(&report.report_json()).unwrap();
        assert_eq!(
            v.get("failure_reason").and_then(Value::as_str),
            Some("worker thread for shard 1 was lost")
        );
        assert_eq!(
            v.get("processed_interactions").and_then(Value::as_u64),
            Some(450)
        );
        assert_eq!(
            v.get("chaos_plan").and_then(Value::as_str),
            Some("kill-worker@450")
        );
        assert_eq!(v.get("chaos_seed").and_then(Value::as_u64), Some(7));
        assert_eq!(
            v.get("last_checkpoint")
                .and_then(|c| c.get("bytes"))
                .and_then(Value::as_u64),
            Some(1234)
        );
        assert_eq!(v.get("metrics_file"), Some(&Value::Null));
    }

    #[test]
    fn write_to_creates_the_full_directory() {
        let mut obs = Obs::new();
        let c = obs.metrics.counter("events_total", "count");
        obs.metrics.add(c, 3);
        let started = std::time::Instant::now();
        obs.trace.record("run", 0, started);
        let report = CrashReport {
            failure_reason: "boom".into(),
            processed_interactions: 9,
            policy: "fifo".into(),
            shards: 4,
            metrics: Some(obs.snapshot()),
            trace_json: Some(obs.trace.to_chrome_trace()),
            ..CrashReport::default()
        };
        let dir = temp_dir("full");
        let _ = std::fs::remove_dir_all(&dir);
        let written = report.write_to(&dir).unwrap();
        assert_eq!(written.len(), 3);
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        let parsed = Value::parse(&metrics).unwrap();
        assert_eq!(parsed.get("schema").and_then(Value::as_u64), Some(2));
        let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        let parsed = Value::parse(&trace).unwrap();
        assert!(!parsed
            .get("traceEvents")
            .and_then(Value::as_arr)
            .unwrap()
            .is_empty());
        let report_doc = std::fs::read_to_string(dir.join("report.json")).unwrap();
        let parsed = Value::parse(&report_doc).unwrap();
        assert_eq!(parsed.get("chaos_plan"), Some(&Value::Null));
        assert_eq!(
            parsed.get("metrics_file").and_then(Value::as_str),
            Some("metrics.json")
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
