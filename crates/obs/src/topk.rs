//! A constant-memory space-saving sketch of the heaviest keys in a stream.
//!
//! The paper's workloads are heavy-tailed — a handful of hub vertices
//! dominate transfer volume — and the work-stealing roadmap item needs to
//! *see* those hubs without holding a per-vertex table. [`SpaceSaving`] is
//! the classic Metwally/Agrawal/El Abbadi summary: at most `capacity`
//! entries, each `(key, weight, error)`, where `weight` overestimates the
//! key's true total by at most `error`. Offering is a linear scan over the
//! fixed-size table (allocation-free once the table is full), which is
//! exactly right for the small `K` the skew exports use.
//!
//! Determinism: ties on eviction resolve to the lowest table index and
//! merges fold the source's entries in `(weight desc, key asc)` order, so
//! identical per-shard observations merged in shard order always produce
//! the same sketch.

/// One entry of a [`SpaceSaving`] sketch: `weight` overestimates the key's
/// true total by at most `error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopKEntry {
    /// The tracked key (the engines use raw vertex ids).
    pub key: u32,
    /// Estimated total weight offered under `key` (an upper bound).
    pub weight: u64,
    /// Maximum overestimation inherited from evicted entries.
    pub error: u64,
}

/// A bounded top-K sketch (space-saving algorithm) over `u32` keys with
/// `u64` weights.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<TopKEntry>,
}

impl SpaceSaving {
    /// An empty sketch holding at most `capacity` entries. The table is
    /// pre-sized, so offering never reallocates.
    ///
    /// # Panics
    /// If `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a space-saving sketch needs capacity >= 1");
        SpaceSaving {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of entries the sketch holds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch has seen no keys yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offer `weight` under `key`. Allocation-free: either an existing entry
    /// absorbs the weight, a free slot takes it, or the minimum-weight entry
    /// is evicted (its weight becoming the newcomer's error bound).
    #[inline]
    pub fn offer(&mut self, key: u32, weight: u64) {
        for e in &mut self.entries {
            if e.key == key {
                e.weight = e.weight.saturating_add(weight);
                return;
            }
        }
        if self.entries.len() < self.capacity {
            self.entries.push(TopKEntry {
                key,
                weight,
                error: 0,
            });
            return;
        }
        let mut min_i = 0;
        for (i, e) in self.entries.iter().enumerate() {
            if e.weight < self.entries[min_i].weight {
                min_i = i;
            }
        }
        let min_w = self.entries[min_i].weight;
        self.entries[min_i] = TopKEntry {
            key,
            weight: min_w.saturating_add(weight),
            error: min_w,
        };
    }

    /// Fold another sketch into this one — how the coordinator aggregates
    /// the per-shard sketches shipped at sync barriers. The source's entries
    /// are folded heaviest-first so the merge is deterministic regardless of
    /// either table's insertion order.
    pub fn merge_from(&mut self, other: &SpaceSaving) {
        let mut theirs = other.entries.clone();
        theirs.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.key.cmp(&b.key)));
        for e in theirs {
            if let Some(mine) = self.entries.iter_mut().find(|m| m.key == e.key) {
                mine.weight = mine.weight.saturating_add(e.weight);
                mine.error = mine.error.saturating_add(e.error);
                continue;
            }
            if self.entries.len() < self.capacity {
                self.entries.push(e);
                continue;
            }
            let mut min_i = 0;
            for (i, m) in self.entries.iter().enumerate() {
                if m.weight < self.entries[min_i].weight {
                    min_i = i;
                }
            }
            let min_w = self.entries[min_i].weight;
            self.entries[min_i] = TopKEntry {
                key: e.key,
                weight: min_w.saturating_add(e.weight),
                error: min_w.saturating_add(e.error),
            };
        }
    }

    /// The tracked entries sorted heaviest-first (`weight` desc, `key` asc)
    /// — what the metrics snapshot exports.
    #[must_use]
    pub fn top(&self) -> Vec<TopKEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.key.cmp(&b.key)));
        out
    }

    /// Drop every entry while keeping the pre-sized table — how a shard
    /// worker empties its sketch after shipping a delta at a sync barrier.
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(4);
        assert!(s.is_empty());
        for _ in 0..5 {
            s.offer(7, 1);
        }
        s.offer(3, 10);
        assert_eq!(s.len(), 2);
        let top = s.top();
        assert_eq!(
            top[0],
            TopKEntry {
                key: 3,
                weight: 10,
                error: 0
            }
        );
        assert_eq!(
            top[1],
            TopKEntry {
                key: 7,
                weight: 5,
                error: 0
            }
        );
    }

    #[test]
    fn eviction_bounds_the_error() {
        let mut s = SpaceSaving::new(2);
        s.offer(1, 100);
        s.offer(2, 1);
        // Key 3 evicts key 2 (the minimum): weight = 1 + 5, error = 1.
        s.offer(3, 5);
        let top = s.top();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].key, 1);
        assert_eq!(
            top[1],
            TopKEntry {
                key: 3,
                weight: 6,
                error: 1
            }
        );
        // A heavy hitter survives a tail of strangers: the churn slots
        // absorb the tail while the hub's weight keeps it out of eviction.
        let mut s = SpaceSaving::new(3);
        s.offer(1, 100);
        for k in 10..60u32 {
            s.offer(k, 1);
        }
        let top = s.top();
        assert_eq!(top[0].key, 1);
        assert_eq!(top[0].error, 0);
    }

    #[test]
    fn merge_is_deterministic_and_keeps_the_heavies() {
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        a.offer(1, 50);
        a.offer(2, 10);
        b.offer(1, 25);
        b.offer(3, 40);
        b.offer(4, 2);
        let mut merged1 = a.clone();
        merged1.merge_from(&b);
        let mut merged2 = a.clone();
        merged2.merge_from(&b);
        assert_eq!(merged1, merged2);
        let top = merged1.top();
        assert_eq!(
            top[0],
            TopKEntry {
                key: 1,
                weight: 75,
                error: 0
            }
        );
        assert_eq!(top[1].key, 3);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut s = SpaceSaving::new(2);
        s.offer(1, 1);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = SpaceSaving::new(0);
    }
}
