//! The metrics registry: counters, gauges and log-bucketed histograms.
//!
//! All metrics are preregistered (name + unit) before the hot loop starts;
//! registration returns a plain-index handle and is the only allocating
//! operation. Updating through a handle is an array index plus integer
//! arithmetic — no locks, no allocation, no formatting.
//!
//! Shard workers keep their own private `Registry` with an identical
//! registration prefix and ship it to the main thread at sync barriers;
//! [`Registry::merge_prefix_from`] folds such a delta in. Merging is
//! integer-only and the engine merges deltas in shard order, so repeated
//! runs aggregate deterministically given identical per-shard observations.

/// Handle for a registered counter (monotonically increasing `u64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle for a registered gauge (a sampled level: last/min/max are kept).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle for a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]` (bucket 64 tops out at `u64::MAX`).
pub const NUM_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` observations (power-of-two bucket
/// boundaries), with exact count/sum/min/max and bucket-resolution
/// percentile estimates. Recording is branch-light integer arithmetic —
/// suitable for per-interaction latencies on the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into: 0 for 0, otherwise the value's
    /// bit length (so bucket `i` spans `[2^(i-1), 2^i - 1]`).
    #[inline]
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `[low, high]` value range of bucket `index`.
    ///
    /// # Panics
    /// If `index >= NUM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < NUM_BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) at bucket resolution: the
    /// upper bound of the bucket containing the rank-`ceil(q·count)`
    /// observation, clamped to the exact observed `[min, max]`. Exact for
    /// min (q=0) and max (q=1); within a 2× bucket for everything between.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, high) = Self::bucket_bounds(i);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Per-bucket counts (length [`NUM_BUCKETS`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Fold another histogram's observations into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Drop all observations, keeping the allocation-free layout.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[derive(Clone, Debug)]
struct Counter {
    name: &'static str,
    unit: &'static str,
    value: u64,
}

#[derive(Clone, Debug)]
struct Gauge {
    name: &'static str,
    unit: &'static str,
    last: u64,
    min: u64,
    max: u64,
    samples: u64,
}

#[derive(Clone, Debug)]
struct HistEntry {
    name: &'static str,
    unit: &'static str,
    hist: Histogram,
}

/// A fixed set of preregistered metrics. Registration (allocating) happens
/// once at engine build time; every later update is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    hists: Vec<HistEntry>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a counter. `unit` is a free-form annotation (`"count"`,
    /// `"bytes"`, …) carried into the JSON export.
    pub fn counter(&mut self, name: &'static str, unit: &'static str) -> CounterId {
        self.counters.push(Counter {
            name,
            unit,
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &'static str, unit: &'static str) -> GaugeId {
        self.gauges.push(Gauge {
            name,
            unit,
            last: 0,
            min: u64::MAX,
            max: 0,
            samples: 0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram.
    pub fn histogram(&mut self, name: &'static str, unit: &'static str) -> HistogramId {
        self.hists.push(HistEntry {
            name,
            unit,
            hist: Histogram::new(),
        });
        HistogramId(self.hists.len() - 1)
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1;
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Current counter value.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Record a gauge sample (keeps last/min/max/sample-count).
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: u64) {
        let g = &mut self.gauges[id.0];
        g.last = value;
        g.min = g.min.min(value);
        g.max = g.max.max(value);
        g.samples += 1;
    }

    /// Most recent gauge sample (0 before the first sample).
    #[must_use]
    pub fn gauge_last(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].last
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.hists[id.0].hist.record(value);
    }

    /// Record a duration as whole nanoseconds.
    #[inline]
    pub fn observe_duration(&mut self, id: HistogramId, duration: std::time::Duration) {
        self.observe(id, duration.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Read access to a registered histogram.
    #[must_use]
    pub fn histogram_data(&self, id: HistogramId) -> &Histogram {
        &self.hists[id.0].hist
    }

    /// Fold another registry into this one. `other` must have been built by
    /// the same registration sequence as a *prefix* of this registry's —
    /// the shard-worker pattern, where workers register the shared worker
    /// metrics and the main thread registers the same prefix plus
    /// engine-level extras. Counters and histogram buckets add; gauges keep
    /// min-of-min / max-of-max and adopt `other`'s last sample when it has
    /// one. Integer-only, so merging shard deltas in shard order is
    /// deterministic.
    ///
    /// # Panics
    /// If `other`'s metrics are not a name-for-name prefix of this
    /// registry's (a protocol bug, not a data error).
    pub fn merge_prefix_from(&mut self, other: &Registry) {
        assert!(
            other.counters.len() <= self.counters.len()
                && other.gauges.len() <= self.gauges.len()
                && other.hists.len() <= self.hists.len(),
            "merge source registers more metrics than the destination"
        );
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters.iter()) {
            assert_eq!(mine.name, theirs.name, "counter layout mismatch");
            mine.value += theirs.value;
        }
        for (mine, theirs) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            assert_eq!(mine.name, theirs.name, "gauge layout mismatch");
            if theirs.samples > 0 {
                mine.last = theirs.last;
                mine.min = mine.min.min(theirs.min);
                mine.max = mine.max.max(theirs.max);
                mine.samples += theirs.samples;
            }
        }
        for (mine, theirs) in self.hists.iter_mut().zip(other.hists.iter()) {
            assert_eq!(mine.name, theirs.name, "histogram layout mismatch");
            mine.hist.merge_from(&theirs.hist);
        }
    }

    /// Zero every value while keeping the registered layout — how a shard
    /// worker turns its registry back into an empty delta after shipping it
    /// at a sync barrier. Allocation-free.
    pub fn reset_values(&mut self) {
        for c in &mut self.counters {
            c.value = 0;
        }
        for g in &mut self.gauges {
            g.last = 0;
            g.min = u64::MAX;
            g.max = 0;
            g.samples = 0;
        }
        for h in &mut self.hists {
            h.hist.reset();
        }
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name,
                    unit: c.unit,
                    value: c.value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSnapshot {
                    name: g.name,
                    unit: g.unit,
                    last: g.last,
                    min: if g.samples == 0 { 0 } else { g.min },
                    max: g.max,
                    samples: g.samples,
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|h| HistogramSnapshot {
                    name: h.name,
                    unit: h.unit,
                    count: h.hist.count(),
                    sum: h.hist.sum(),
                    min: h.hist.min(),
                    max: h.hist.max(),
                    p50: h.hist.quantile(0.50),
                    p90: h.hist.quantile(0.90),
                    p99: h.hist.quantile(0.99),
                    buckets: h
                        .hist
                        .buckets()
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        .map(|(i, n)| {
                            let (low, high) = Histogram::bucket_bounds(i);
                            (low, high, *n)
                        })
                        .collect(),
                })
                .collect(),
            trace: None,
            hot_vertices: Vec::new(),
            hot_migrations: Vec::new(),
        }
    }
}

/// A frozen counter value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Unit annotation.
    pub unit: &'static str,
    /// Counter value.
    pub value: u64,
}

/// A frozen gauge value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Unit annotation.
    pub unit: &'static str,
    /// Most recent sample (0 before the first).
    pub last: u64,
    /// Smallest sample (0 before the first).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Number of samples recorded.
    pub samples: u64,
}

/// A frozen histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Unit annotation.
    pub unit: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Estimated median (bucket resolution).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Occupied buckets as `(low, high, count)`, ascending.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Flight-recorder health frozen into a snapshot: how full the bounded
/// trace buffer is and how many spans it had to drop. A non-zero `dropped`
/// means the Chrome-trace export is truncated — detectable from metrics
/// alone, without loading the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Maximum number of spans the recorder holds.
    pub capacity: u64,
    /// Spans currently held (the capacity watermark: the recorder keeps the
    /// earliest spans and never evicts, so this only grows).
    pub recorded: u64,
    /// Spans discarded because the recorder was full.
    pub dropped: u64,
}

/// A point-in-time copy of a [`Registry`] — what [`crate::Obs::snapshot`]
/// hands to a scraper and what the `--metrics-out` JSON is rendered from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All counters, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Flight-recorder stats; `None` when the snapshot was taken from a bare
    /// [`Registry`] (shard-worker deltas have no recorder of their own).
    pub trace: Option<TraceStats>,
    /// Hottest vertices by touch count (space-saving sketch, heaviest
    /// first). Empty when the producer tracks no skew sketch.
    pub hot_vertices: Vec<crate::topk::TopKEntry>,
    /// Hottest vertices by migrated state bytes (sharded runs only).
    pub hot_migrations: Vec<crate::topk::TopKEntry>,
}

impl MetricsSnapshot {
    /// Render as a self-describing JSON document with top-level keys
    /// `schema`, `counters`, `gauges`, `histograms`, `trace`,
    /// `hot_vertices` and `hot_migrations` (the CI smoke step validates
    /// exactly these). Schema 2 added the trace stats and the skew sketches.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": 2,\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"unit\": \"{}\", \"value\": {}}}",
                c.name, c.unit, c.value
            ));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"unit\": \"{}\", \"last\": {}, \"min\": {}, \"max\": {}, \"samples\": {}}}",
                g.name, g.unit, g.last, g.min, g.max, g.samples
            ));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"unit\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.name, h.unit, h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            ));
            for (j, (low, high, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{low}, {high}, {n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"trace\": ");
        match &self.trace {
            Some(t) => out.push_str(&format!(
                "{{\"capacity\": {}, \"recorded\": {}, \"dropped\": {}}}",
                t.capacity, t.recorded, t.dropped
            )),
            None => out.push_str("null"),
        }
        for (key, entries) in [
            ("hot_vertices", &self.hot_vertices),
            ("hot_migrations", &self.hot_migrations),
        ] {
            out.push_str(&format!(",\n  \"{key}\": ["));
            for (i, e) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"key\": {}, \"weight\": {}, \"error\": {}}}",
                    e.key, e.weight, e.error
                ));
            }
            out.push(']');
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is exactly zero.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        // Bucket i spans [2^(i-1), 2^i - 1]; check every boundary pair.
        for i in 1..64usize {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_bounds(i), (low, high), "bucket {i}");
            assert_eq!(Histogram::bucket_index(low), i, "low edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(high), i, "high edge of bucket {i}");
            if i > 1 {
                assert_eq!(Histogram::bucket_index(low - 1), i - 1);
            }
        }
        // The top bucket absorbs everything from 2^63 up.
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    #[should_panic(expected = "bucket index out of range")]
    fn bucket_bounds_reject_out_of_range() {
        let _ = Histogram::bucket_bounds(NUM_BUCKETS);
    }

    #[test]
    fn histogram_tracks_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        for v in [3u64, 9, 1, 1000, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1022);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 204.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        // 89 small values (bucket [8,15]) and 11 large (bucket [1024,2047]):
        // p50 and p80 must resolve to the small bucket, p99 to the large one.
        for _ in 0..89 {
            h.record(10);
        }
        for _ in 0..11 {
            h.record(1500);
        }
        assert_eq!(h.quantile(0.0), 10); // clamped to exact min
        assert!(h.quantile(0.5) <= 15);
        assert!(h.quantile(0.80) <= 15);
        assert!(h.quantile(0.99) >= 1024);
        assert_eq!(h.quantile(1.0), 1500); // clamped to exact max
    }

    #[test]
    fn quantile_of_uniform_stream_is_within_one_bucket() {
        let mut h = Histogram::new();
        for v in 1..=1024u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // True median 512; bucket resolution allows up to the bucket edge.
        assert!((512..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((1014..=1024).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn merge_and_reset_preserve_layout() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(100);
        b.record(2);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 100);
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.max(), 0);
        // Merging an empty histogram is a no-op.
        let empty = Histogram::new();
        b.merge_from(&empty);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn registry_counters_gauges_histograms_round_trip() {
        let mut r = Registry::new();
        let c = r.counter("batches_total", "count");
        let g = r.gauge("depth", "messages");
        let h = r.histogram("latency_ns", "ns");
        r.inc(c);
        r.add(c, 4);
        r.set_gauge(g, 7);
        r.set_gauge(g, 3);
        r.observe(h, 1000);
        r.observe_duration(h, std::time::Duration::from_nanos(500));
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.gauge_last(g), 3);
        assert_eq!(r.histogram_data(h).count(), 2);

        let snap = r.snapshot();
        assert_eq!(snap.counters[0].value, 5);
        assert_eq!(snap.gauges[0].min, 3);
        assert_eq!(snap.gauges[0].max, 7);
        assert_eq!(snap.gauges[0].samples, 2);
        assert_eq!(snap.histograms[0].count, 2);
        assert_eq!(snap.histograms[0].min, 500);
        assert_eq!(snap.histograms[0].max, 1000);

        let json = snap.to_json();
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"batches_total\""));
        assert!(json.contains("\"latency_ns\""));
        assert!(json.contains("\"buckets\": ["));
        // A registry snapshot has no recorder and no sketches.
        assert!(json.contains("\"trace\": null"));
        assert!(json.contains("\"hot_vertices\": []"));
        assert!(json.contains("\"hot_migrations\": []"));
    }

    #[test]
    fn prefix_merge_adds_counters_and_folds_gauges() {
        let build_worker = |r: &mut Registry| {
            (
                r.counter("locals_total", "count"),
                r.gauge("backlog", "messages"),
                r.histogram("batch_ns", "ns"),
            )
        };
        let mut main = Registry::new();
        let (mc, mg, mh) = build_worker(&mut main);
        let main_only = main.counter("wavefronts_total", "count");

        let mut worker = Registry::new();
        let (wc, wg, wh) = build_worker(&mut worker);
        worker.add(wc, 10);
        worker.set_gauge(wg, 4);
        worker.observe(wh, 99);

        main.inc(main_only);
        main.merge_prefix_from(&worker);
        assert_eq!(main.counter_value(mc), 10);
        assert_eq!(main.gauge_last(mg), 4);
        assert_eq!(main.histogram_data(mh).count(), 1);
        assert_eq!(main.counter_value(main_only), 1);

        // A second merge after reset contributes nothing.
        worker.reset_values();
        main.merge_prefix_from(&worker);
        assert_eq!(main.counter_value(mc), 10);
        assert_eq!(main.histogram_data(mh).count(), 1);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn prefix_merge_rejects_mismatched_layouts() {
        let mut a = Registry::new();
        a.counter("one", "count");
        let mut b = Registry::new();
        b.counter("two", "count");
        a.merge_prefix_from(&b);
    }

    #[test]
    #[should_panic(expected = "more metrics than the destination")]
    fn prefix_merge_rejects_longer_source() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        b.counter("extra", "count");
        a.merge_prefix_from(&b);
    }

    #[test]
    fn empty_snapshot_renders_valid_json_shape() {
        let json = Registry::new().snapshot().to_json();
        assert!(json.contains("\"counters\": {"));
        assert!(json.contains("\"gauges\": {"));
        assert!(json.contains("\"histograms\": {"));
    }
}
