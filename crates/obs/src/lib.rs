//! Zero-overhead observability for the TIN engines.
//!
//! The serving roadmap (work-stealing, tiered storage, incremental
//! checkpoints) needs to see *inside* a run — wavefront sizes, shard queue
//! waits, checkpoint fsync stalls, per-interaction latency percentiles — but
//! the build environment is offline, so the usual `tracing`/`prometheus`
//! stack is unavailable. This crate is the dependency-free replacement,
//! built around two constraints:
//!
//! 1. **Zero steady-state allocations.** Every metric is preregistered
//!    before the stream starts and updated through an index-based handle
//!    ([`CounterId`], [`GaugeId`], [`HistogramId`]) into pre-sized storage;
//!    recording a value is an array index plus integer arithmetic. The
//!    engines' allocator-counting tests run with metrics *enabled*.
//! 2. **Near-no-op when disabled.** Engines hold an `Option` around their
//!    observability state, so an uninstrumented hot path pays one branch.
//!
//! Three pieces:
//!
//! * [`Registry`] — fixed-size counters, gauges, and log-bucketed
//!   [`Histogram`]s with p50/p90/p99 estimation, mergeable across shard
//!   workers (deterministically, in shard order) and exportable as JSON.
//! * [`Recorder`] — a bounded flight recorder of timestamped [`SpanEvent`]s
//!   (wavefront dispatch, shard barriers, checkpoint captures) exportable as
//!   Chrome trace-event JSON, loadable in Perfetto or `chrome://tracing`.
//! * [`Obs`] — the pair of them, the unit the engines attach and the future
//!   serve loop scrapes via [`Obs::snapshot`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod trace;

pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, MetricsSnapshot, Registry};
pub use trace::{Recorder, SpanEvent};

/// Default flight-recorder capacity (events) for [`Obs::new`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One attachable observability unit: a metrics registry plus a span flight
/// recorder. Engines take an `Obs` at build time, update it through
/// preregistered handles while streaming, and hand it back for export (or
/// live scraping via [`Obs::snapshot`]) when the run ends.
#[derive(Debug)]
pub struct Obs {
    /// Counters, gauges and histograms.
    pub metrics: Registry,
    /// The span flight recorder.
    pub trace: Recorder,
}

impl Obs {
    /// An empty unit with the default flight-recorder capacity.
    #[must_use]
    pub fn new() -> Self {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty unit whose flight recorder holds at most `capacity` events
    /// (later events are counted as dropped, never reallocated).
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs {
            metrics: Registry::new(),
            trace: Recorder::new(capacity),
        }
    }

    /// A point-in-time copy of every metric — the scrape API for a live
    /// serve loop: cheap, allocation-bounded, and independent of the
    /// registry it was taken from.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundles_registry_and_recorder() {
        let mut obs = Obs::new();
        let c = obs.metrics.counter("events_total", "count");
        obs.metrics.add(c, 3);
        let snap = obs.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(obs.trace.events().len(), 0);
        let default = Obs::default();
        assert_eq!(default.snapshot().counters.len(), 0);
    }
}
