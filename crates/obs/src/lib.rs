//! Zero-overhead observability for the TIN engines.
//!
//! The serving roadmap (work-stealing, tiered storage, incremental
//! checkpoints) needs to see *inside* a run — wavefront sizes, shard queue
//! waits, checkpoint fsync stalls, per-interaction latency percentiles — but
//! the build environment is offline, so the usual `tracing`/`prometheus`
//! stack is unavailable. This crate is the dependency-free replacement,
//! built around two constraints:
//!
//! 1. **Zero steady-state allocations.** Every metric is preregistered
//!    before the stream starts and updated through an index-based handle
//!    ([`CounterId`], [`GaugeId`], [`HistogramId`]) into pre-sized storage;
//!    recording a value is an array index plus integer arithmetic. The
//!    engines' allocator-counting tests run with metrics *enabled*.
//! 2. **Near-no-op when disabled.** Engines hold an `Option` around their
//!    observability state, so an uninstrumented hot path pays one branch.
//!
//! Three pieces:
//!
//! * [`Registry`] — fixed-size counters, gauges, and log-bucketed
//!   [`Histogram`]s with p50/p90/p99 estimation, mergeable across shard
//!   workers (deterministically, in shard order) and exportable as JSON.
//! * [`Recorder`] — a bounded flight recorder of timestamped [`SpanEvent`]s
//!   (wavefront dispatch, shard barriers, checkpoint captures) exportable as
//!   Chrome trace-event JSON, loadable in Perfetto or `chrome://tracing`.
//! * [`Obs`] — the bundle of them (plus the skew sketches), the unit the
//!   engines attach and the future serve loop scrapes via [`Obs::snapshot`].
//! * [`Telemetry`] — a JSONL streaming sink the engines feed every N
//!   interactions and at sync barriers, so a live run can be scraped
//!   mid-stream.
//! * [`CrashReport`] — the black-box post-mortem a dying run dumps to disk.
//! * [`SpaceSaving`] — a constant-memory top-K sketch used for the hottest
//!   vertices by touch count and migrated bytes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crash;
pub mod json;
pub mod metrics;
pub mod telemetry;
pub mod topk;
pub mod trace;

pub use crash::{CheckpointMeta, CrashReport};
pub use metrics::{
    CounterId, GaugeId, Histogram, HistogramId, MetricsSnapshot, Registry, TraceStats,
};
pub use telemetry::Telemetry;
pub use topk::{SpaceSaving, TopKEntry};
pub use trace::{Recorder, SpanEvent};

/// Default flight-recorder capacity (events) for [`Obs::new`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default capacity of the skew sketches ([`Obs::hot_vertices`] /
/// [`Obs::hot_migrations`]): small enough that offering is a short linear
/// scan on the hot path, large enough to surface every hub the heavy-tailed
/// paper workloads produce.
pub const DEFAULT_TOPK_CAPACITY: usize = 16;

/// One attachable observability unit: a metrics registry, a span flight
/// recorder, and the two skew sketches. Engines take an `Obs` at build
/// time, update it through preregistered handles while streaming, and hand
/// it back for export (or live scraping via [`Obs::snapshot`]) when the run
/// ends.
#[derive(Debug)]
pub struct Obs {
    /// Counters, gauges and histograms.
    pub metrics: Registry,
    /// The span flight recorder.
    pub trace: Recorder,
    /// Hottest vertices by touch count (every interaction touches its
    /// source and destination once).
    pub hot_vertices: SpaceSaving,
    /// Hottest vertices by migrated state bytes (sharded runs; stays empty
    /// on the sequential engine, which never migrates state).
    pub hot_migrations: SpaceSaving,
}

impl Obs {
    /// An empty unit with the default flight-recorder capacity.
    #[must_use]
    pub fn new() -> Self {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty unit whose flight recorder holds at most `capacity` events
    /// (later events are counted as dropped, never reallocated).
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs {
            metrics: Registry::new(),
            trace: Recorder::new(capacity),
            hot_vertices: SpaceSaving::new(DEFAULT_TOPK_CAPACITY),
            hot_migrations: SpaceSaving::new(DEFAULT_TOPK_CAPACITY),
        }
    }

    /// A point-in-time copy of every metric — the scrape API for a live
    /// serve loop and the record [`Telemetry`] streams: cheap,
    /// allocation-bounded, and independent of the registry it was taken
    /// from. Unlike [`Registry::snapshot`], this fills in the flight
    /// recorder's [`TraceStats`] and the skew sketches.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.trace = Some(TraceStats {
            capacity: self.trace.capacity() as u64,
            recorded: self.trace.events().len() as u64,
            dropped: self.trace.dropped(),
        });
        snap.hot_vertices = self.hot_vertices.top();
        snap.hot_migrations = self.hot_migrations.top();
        snap
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundles_registry_and_recorder() {
        let mut obs = Obs::new();
        let c = obs.metrics.counter("events_total", "count");
        obs.metrics.add(c, 3);
        let snap = obs.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(obs.trace.events().len(), 0);
        let default = Obs::default();
        assert_eq!(default.snapshot().counters.len(), 0);
    }

    #[test]
    fn snapshot_carries_trace_stats_and_sketches() {
        let mut obs = Obs::with_trace_capacity(1);
        let started = std::time::Instant::now();
        obs.trace.record("a", 0, started);
        obs.trace.record("b", 0, started);
        obs.hot_vertices.offer(3, 2);
        obs.hot_migrations.offer(5, 640);
        let snap = obs.snapshot();
        let trace = snap.trace.expect("Obs snapshots carry trace stats");
        assert_eq!(trace.capacity, 1);
        assert_eq!(trace.recorded, 1);
        assert_eq!(trace.dropped, 1);
        assert_eq!(snap.hot_vertices[0].key, 3);
        assert_eq!(snap.hot_migrations[0].weight, 640);
        // The JSON export carries all of it.
        let json = snap.to_json();
        assert!(json.contains("\"dropped\": 1"));
        assert!(json.contains("\"hot_vertices\": [{\"key\": 3"));
    }
}
