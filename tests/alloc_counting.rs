//! Allocation regression test for the PR 2 zero-allocation merge kernels.
//!
//! Installs the `tin-memstats` counting allocator for this test binary and
//! asserts that the proportional-sparse hot path performs **zero heap
//! allocations** once the provenance lists have reached their steady-state
//! shape — the property that replaced the one-fresh-`Vec`-per-interaction
//! behaviour of the original `merge_add_scaled`.
//!
//! This file intentionally contains a single test: the measurement relies on
//! process-global allocator counters, so a concurrently running test in the
//! same binary would pollute the delta.

use tin::prelude::*;
use tin_memstats::CountingAllocator;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_sparse_hot_path_does_not_allocate() {
    let num_vertices = 16usize;
    let mut tracker = ProportionalSparseTracker::new(num_vertices);

    // Seed phase: every vertex generates quantity that reaches every other
    // vertex, so all provenance lists converge on the full origin set and
    // every list/buffer grows to its final capacity.
    let mut time = 0.0;
    let mut interactions = Vec::new();
    for round in 0..50u32 {
        for v in 0..num_vertices as u32 {
            let dst = (v + 1 + round % (num_vertices as u32 - 1)) % num_vertices as u32;
            if dst == v {
                continue;
            }
            time += 1.0;
            // Alternate newborn-heavy and split-heavy transfers so both the
            // full-relay and the proportional-split kernels are exercised.
            let qty = if round % 3 == 0 { 100.0 } else { 1.5 };
            interactions.push(Interaction::new(v, dst, time, qty));
        }
    }
    for r in &interactions {
        tracker.process(r);
    }

    // Steady state reached: replaying the same interaction pattern (shifted
    // in time) must not allocate at all — merges run in place, full relays
    // reuse the swapped buffers, and no list gains a new origin.
    let replay: Vec<Interaction> = interactions
        .iter()
        .map(|r| Interaction::new(r.src, r.dst, r.time.value() + time, r.qty))
        .collect();
    assert!(
        tin_memstats::allocator_installed(),
        "counting allocator must be active for this test to mean anything"
    );
    let before = tin_memstats::snapshot();
    for r in &replay {
        tracker.process(r);
    }
    let after = tin_memstats::snapshot();
    let allocations = after.allocations - before.allocations;
    assert_eq!(
        allocations,
        0,
        "steady-state processing of {} interactions performed {} heap allocations",
        replay.len(),
        allocations
    );

    // The tracker still answers correctly after the replay.
    assert!(tracker.check_all_invariants());
    assert!(tracker.total_buffered() > 0.0);
}
