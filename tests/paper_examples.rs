//! Integration tests reproducing the paper's worked examples (Tables 2–5)
//! through the public facade API, plus the Section 5.3.2 shrinking example.

use tin::prelude::*;

fn running_example() -> Vec<Interaction> {
    tin::core::interaction::paper_running_example()
}

fn v(i: u32) -> VertexId {
    VertexId::new(i)
}

/// Table 2: final buffer totals under the provenance-free baseline.
#[test]
fn table2_final_buffer_totals() {
    let mut tracker = build_tracker(&PolicyConfig::Plain(SelectionPolicy::NoProvenance), 3)
        .expect("valid config");
    tracker.process_all(&running_example());
    assert!((tracker.buffered(v(0)) - 3.0).abs() < 1e-9);
    assert!((tracker.buffered(v(1)) - 2.0).abs() < 1e-9);
    assert!((tracker.buffered(v(2)) - 4.0).abs() < 1e-9);
}

/// Table 3: final buffer contents under the least-recently-born policy.
#[test]
fn table3_final_lrb_origins() {
    let mut t = GenerationTimeTracker::least_recently_born(3);
    t.process_all(&running_example());
    // B_v0 = {(1,1,1),(2,3,2)}; B_v1 = {(1,1,2)}; B_v2 = {(1,5,4)}.
    let o0 = t.origins(v(0));
    assert!((o0.quantity_from_vertex(v(1)) - 1.0).abs() < 1e-9);
    assert!((o0.quantity_from_vertex(v(2)) - 2.0).abs() < 1e-9);
    let o1 = t.origins(v(1));
    assert!((o1.quantity_from_vertex(v(1)) - 2.0).abs() < 1e-9);
    let o2 = t.origins(v(2));
    assert!((o2.quantity_from_vertex(v(1)) - 4.0).abs() < 1e-9);
    // Birth times survive: the 4 units at v2 were born at time 5.
    let with_birth = t.origins_with_birth(v(2));
    assert_eq!(with_birth.len(), 1);
    assert_eq!((with_birth[0].0).1, Timestamp::new(5.0));
}

/// Table 4: final buffer contents under the LIFO policy.
#[test]
fn table4_final_lifo_pairs() {
    let mut t = ReceiptOrderTracker::lifo(3);
    t.process_all(&running_example());
    // B_v0 = {(1,2),(1,1)}; B_v1 = {(1,2)}; B_v2 = {(1,1),(2,2),(1,1)}.
    let mut p0 = t.pairs(v(0));
    p0.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(p0, vec![(v(1), 1.0), (v(1), 2.0)]);
    assert_eq!(t.pairs(v(1)), vec![(v(1), 2.0)]);
    let o2 = t.origins(v(2));
    assert!((o2.quantity_from_vertex(v(1)) - 2.0).abs() < 1e-9);
    assert!((o2.quantity_from_vertex(v(2)) - 2.0).abs() < 1e-9);
}

/// Table 5: final provenance vectors under proportional selection.
#[test]
fn table5_final_proportional_vectors() {
    let mut t = ProportionalDenseTracker::new(3);
    t.process_all(&running_example());
    let expected = [
        (0u32, [0.0, 2.03, 0.97]),
        (1u32, [0.0, 1.66, 0.34]),
        (2u32, [0.0, 3.31, 0.69]),
    ];
    for (vertex, vals) in expected {
        let p = t.vector(v(vertex));
        for (i, want) in vals.iter().enumerate() {
            assert!(
                (p.get(i) - want).abs() < 0.01,
                "p_v{vertex}[{i}] = {} want {want}",
                p.get(i)
            );
        }
    }
}

/// All policies agree on buffer totals at every step (the totals are policy-
/// independent; only the provenance decomposition differs).
#[test]
fn all_policies_agree_on_buffer_totals() {
    let example = running_example();
    let mut trackers: Vec<Box<dyn ProvenanceTracker>> = SelectionPolicy::all()
        .iter()
        .map(|p| build_tracker(&PolicyConfig::Plain(*p), 3).unwrap())
        .collect();
    for r in &example {
        for t in trackers.iter_mut() {
            t.process(r);
        }
        let reference = trackers[0].buffered(r.dst);
        for t in &trackers {
            assert!(
                (t.buffered(r.dst) - reference).abs() < 1e-9,
                "{} disagrees on |B_{}|",
                t.name(),
                r.dst
            );
        }
    }
}

/// The Section 5.3.2 worked example: a budget of C = 5 with f = 0.6 keeps the
/// three largest entries and folds the rest into α.
#[test]
fn section_5_3_2_shrinking_example() {
    use tin::core::sparse_vec::SparseProvenance;
    let mut p: SparseProvenance = [
        (Origin::Vertex(v(10)), 1.0),
        (Origin::Vertex(v(11)), 3.0),
        (Origin::Vertex(v(12)), 2.0),
        (Origin::Vertex(v(13)), 1.0),
    ]
    .into_iter()
    .collect();
    // Merge the new entries {(x,2),(w,1),(y,4)} of the example.
    let incoming: SparseProvenance = [
        (Origin::Vertex(v(14)), 2.0),
        (Origin::Vertex(v(12)), 1.0),
        (Origin::Vertex(v(15)), 4.0),
    ]
    .into_iter()
    .collect();
    p.merge_add(&incoming);
    assert_eq!(p.len(), 6); // capacity C = 5 violated
    let removed = p.shrink_keep_largest(3);
    assert!((removed - 4.0).abs() < 1e-9);
    assert_eq!(p.len(), 4); // {u,w,y} + α
    assert!((p.get(Origin::Unknown) - 4.0).abs() < 1e-9);
    assert!((p.get(Origin::Vertex(v(11))) - 3.0).abs() < 1e-9);
    assert!((p.get(Origin::Vertex(v(12))) - 3.0).abs() < 1e-9);
    assert!((p.get(Origin::Vertex(v(15))) - 4.0).abs() < 1e-9);
}

/// Figure 1: the FIFO transfer example from the introduction. B_v holds 4
/// units from w and 3 from z; a transfer of 5 moves all 4 w-units plus 1
/// z-unit.
#[test]
fn figure1_fifo_transfer() {
    // Build the state of Figure 1: w sends 4 to v, z sends 3 to v, then the
    // interaction <v, u, t, 5>.
    let w = 0u32;
    let z = 1u32;
    let vv = 2u32;
    let u = 3u32;
    let rs = vec![
        Interaction::new(w, vv, 1.0, 4.0),
        Interaction::new(z, vv, 2.0, 3.0),
        Interaction::new(vv, u, 3.0, 5.0),
    ];
    let mut t = ReceiptOrderTracker::fifo(4);
    t.process_all(&rs);
    let at_u = t.origins(VertexId::new(u));
    assert!((at_u.quantity_from_vertex(VertexId::new(w)) - 4.0).abs() < 1e-9);
    assert!((at_u.quantity_from_vertex(VertexId::new(z)) - 1.0).abs() < 1e-9);
    let at_v = t.origins(VertexId::new(vv));
    assert!((at_v.quantity_from_vertex(VertexId::new(z)) - 2.0).abs() < 1e-9);
    assert_eq!(at_v.len(), 1);
}
