//! Allocation regression test for the adaptive-representation hot path
//! (companion to `alloc_counting.rs`, which covers the never-promoting
//! sparse tracker — this binary covers `PolicyConfig::AdaptiveProportional`,
//! including the dense↔sparse mixed-representation transfer kernels).
//!
//! Single test per binary: the measurement relies on process-global
//! allocator counters.

use tin::prelude::*;
use tin_memstats::CountingAllocator;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_adaptive_hot_path_does_not_allocate() {
    let num_vertices = 16usize;
    // Aggressive threshold so hub vectors actually promote and the replay
    // exercises dense/dense, dense/sparse and sparse/dense kernels.
    let mut tracker = ProportionalSparseTracker::adaptive(num_vertices, 0.3).unwrap();

    let mut time = 0.0;
    let mut interactions = Vec::new();
    for round in 0..60u32 {
        for v in 0..num_vertices as u32 {
            // Vertex 0 acts as a hub: everyone feeds it, it splits back out.
            let dst = if v == 0 {
                1 + round % (num_vertices as u32 - 1)
            } else {
                0
            };
            time += 1.0;
            let qty = if round % 3 == 0 { 100.0 } else { 1.5 };
            interactions.push(Interaction::new(v, dst, time, qty));
        }
    }
    for r in &interactions {
        tracker.process(r);
    }
    assert!(
        tracker.dense_vector_count() > 0,
        "the hub must have promoted for this test to cover the dense paths"
    );

    // Steady state: replaying the same pattern must not allocate.
    let replay: Vec<Interaction> = interactions
        .iter()
        .map(|r| Interaction::new(r.src, r.dst, r.time.value() + time, r.qty))
        .collect();
    assert!(tin_memstats::allocator_installed());
    let before = tin_memstats::snapshot();
    for r in &replay {
        tracker.process(r);
    }
    let after = tin_memstats::snapshot();
    assert_eq!(
        after.allocations - before.allocations,
        0,
        "steady-state adaptive processing of {} interactions allocated",
        replay.len()
    );
    assert!(tracker.check_all_invariants());
}
