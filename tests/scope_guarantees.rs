//! Integration tests for the guarantees of the scope-limited trackers
//! (Section 5): selective, grouped, windowed and budget-based provenance all
//! trade completeness for resources, but each keeps specific promises that
//! these tests verify on synthetic workloads end to end.

use tin::prelude::*;

/// A reproducible mid-sized workload with enough buffer mixing to make the
/// scope-limiting techniques actually lose information.
fn workload() -> (usize, Vec<Interaction>) {
    let spec = DatasetSpec::with_seed(DatasetKind::ProsperLoans, ScaleProfile::Tiny, 7);
    let stream = tin::datasets::generate(&spec);
    (spec.num_vertices(), stream)
}

fn exact_tracker(num_vertices: usize, stream: &[Interaction]) -> Box<dyn ProvenanceTracker> {
    let mut exact = build_tracker(
        &PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
        num_vertices,
    )
    .unwrap();
    exact.process_all(stream);
    exact
}

/// Every scope-limited tracker must still conserve quantities: buffered
/// totals are identical to the exact tracker at every vertex.
#[test]
fn scope_limiting_preserves_buffered_totals() {
    let (n, stream) = workload();
    let exact = exact_tracker(n, &stream);
    let tin = Tin::from_interactions(n, stream.clone()).unwrap();
    let configs = vec![
        PolicyConfig::Selective {
            tracked: tin.top_k_senders(5),
        },
        Grouping {
            num_groups: 4,
            group_of: (0..n).map(|v| (v % 4) as u32).collect(),
        }
        .to_policy(),
        PolicyConfig::Windowed {
            window: stream.len() / 3,
        },
        PolicyConfig::TimeWindowed {
            duration: stream.last().unwrap().time.value() / 3.0,
        },
        PolicyConfig::budget(10),
    ];
    for config in configs {
        let mut tracker = build_tracker(&config, n).unwrap();
        tracker.process_all(&stream);
        assert!(tracker.check_all_invariants(), "{}", config.key());
        for i in 0..n {
            let v = VertexId::from(i);
            assert!(
                (tracker.buffered(v) - exact.buffered(v)).abs() < 1e-6,
                "{}: buffered total diverged at {v}",
                config.key()
            );
        }
    }
}

/// Selective tracking promises exact provenance *for the tracked origins*:
/// the quantity attributed to each tracked vertex matches the exact tracker,
/// and no untracked vertex ever appears as a concrete origin.
#[test]
fn selective_tracking_is_exact_for_tracked_vertices() {
    let (n, stream) = workload();
    let tin = Tin::from_interactions(n, stream.clone()).unwrap();
    let tracked = tin.top_k_senders(8);
    let exact = exact_tracker(n, &stream);

    let mut selective = build_tracker(
        &PolicyConfig::Selective {
            tracked: tracked.clone(),
        },
        n,
    )
    .unwrap();
    selective.process_all(&stream);

    for i in 0..n {
        let v = VertexId::from(i);
        let approx = selective.origins(v);
        let truth = exact.origins(v);
        for &t in &tracked {
            assert!(
                (approx.quantity_from_vertex(t) - truth.quantity_from_vertex(t)).abs() < 1e-6,
                "tracked origin {t} mis-measured at {v}"
            );
        }
        for (origin, _) in approx.iter() {
            if let Some(vertex) = origin.as_vertex() {
                assert!(
                    tracked.contains(&vertex),
                    "untracked vertex {vertex} leaked into the origin set of {v}"
                );
            }
        }
    }
}

/// Grouped tracking is exact at group granularity: coarsening the exact
/// vertex-level answer onto the grouping reproduces the grouped answer.
#[test]
fn grouped_tracking_matches_coarsened_exact_answer() {
    let (n, stream) = workload();
    let exact = exact_tracker(n, &stream);
    let grouping = Grouping {
        num_groups: 6,
        group_of: (0..n).map(|v| (v % 6) as u32).collect(),
    };
    let mut grouped = build_tracker(&grouping.to_policy(), n).unwrap();
    grouped.process_all(&stream);
    let report = compare_grouped_tracker(grouped.as_ref(), exact.as_ref(), &grouping, 5);
    assert!(report.vertices_compared > 0);
    assert!(
        report.max_total_variation < 1e-6,
        "grouped provenance diverged: {report:?}"
    );
}

/// The time-based window extension keeps the same promises as the
/// count-based one: a duration longer than the stream's time span is exact,
/// and shortening the duration only ever *loses* provenance (the fraction of
/// the buffered quantity with a known concrete origin shrinks monotonically,
/// never the totals).
#[test]
fn time_windowed_tracking_degrades_gracefully() {
    let (n, stream) = workload();
    let exact = exact_tracker(n, &stream);
    let span = stream.last().unwrap().time.value();

    let mut unwindowed = build_tracker(
        &PolicyConfig::TimeWindowed {
            duration: span * 2.0,
        },
        n,
    )
    .unwrap();
    unwindowed.process_all(&stream);
    let report = compare_trackers(unwindowed.as_ref(), exact.as_ref(), 5);
    assert!(report.is_exact(), "D > time span must be exact: {report:?}");

    let mut previous_known = f64::INFINITY;
    for divisor in [2.0, 8.0, 32.0] {
        let mut windowed = build_tracker(
            &PolicyConfig::TimeWindowed {
                duration: span / divisor,
            },
            n,
        )
        .unwrap();
        windowed.process_all(&stream);
        assert!(windowed.check_all_invariants());
        let known: f64 = (0..n)
            .map(|i| windowed.origins(VertexId::from(i)).known_fraction())
            .sum::<f64>()
            / n as f64;
        assert!(
            known <= previous_known + 1e-9,
            "shorter durations must not recover provenance (D = span/{divisor}: {known} > {previous_known})"
        );
        previous_known = known;
        // Whatever is still attributed concretely agrees with the exact tracker.
        for i in 0..n {
            let v = VertexId::from(i);
            let eo = exact.origins(v);
            for (origin, qty) in windowed.origins(v).iter() {
                if let Some(vertex) = origin.as_vertex() {
                    assert!(qty <= eo.quantity_from_vertex(vertex) + 1e-6);
                }
            }
        }
    }
}

/// A window longer than the stream never resets, so windowed tracking is
/// exact; a short window loses provenance but never invents any: whatever it
/// still attributes to a concrete origin is also attributed to that origin by
/// the exact tracker (within tolerance).
#[test]
fn windowed_tracking_degrades_gracefully() {
    let (n, stream) = workload();
    let exact = exact_tracker(n, &stream);

    let mut unwindowed = build_tracker(
        &PolicyConfig::Windowed {
            window: stream.len() + 1,
        },
        n,
    )
    .unwrap();
    unwindowed.process_all(&stream);
    let report = compare_trackers(unwindowed.as_ref(), exact.as_ref(), 5);
    assert!(report.is_exact(), "W > |R| must be exact: {report:?}");

    let mut windowed = build_tracker(
        &PolicyConfig::Windowed {
            window: (stream.len() / 5).max(1),
        },
        n,
    )
    .unwrap();
    windowed.process_all(&stream);
    let report = compare_trackers(windowed.as_ref(), exact.as_ref(), 5);
    assert!(report.mean_known_fraction <= 1.0 + 1e-9);
    // Concrete attributions are never larger than the exact ones.
    for i in 0..n {
        let v = VertexId::from(i);
        let truth = exact.origins(v);
        for (origin, qty) in windowed.origins(v).iter() {
            if origin.as_vertex().is_some() {
                assert!(
                    qty <= truth.quantity_from(origin) + 1e-6,
                    "windowed tracker invented provenance at {v}: {origin} {qty}"
                );
            }
        }
    }
}

/// Budget-based tracking respects its capacity: no vertex ever reports more
/// than C + 1 origin entries (C concrete slots plus the α bucket), and a
/// larger budget never knows less than a smaller one.
#[test]
fn budget_tracking_respects_capacity_and_improves_with_budget() {
    let (n, stream) = workload();
    let exact = exact_tracker(n, &stream);

    let small_capacity = 5;
    let mut small = build_tracker(&PolicyConfig::budget(small_capacity), n).unwrap();
    small.process_all(&stream);
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(
            small.origins(v).len() <= small_capacity + 1,
            "budget exceeded at {v}: {} entries",
            small.origins(v).len()
        );
    }

    let mut large = build_tracker(&PolicyConfig::budget(200), n).unwrap();
    large.process_all(&stream);

    let small_report = compare_trackers(small.as_ref(), exact.as_ref(), 5);
    let large_report = compare_trackers(large.as_ref(), exact.as_ref(), 5);
    assert!(
        large_report.mean_known_fraction >= small_report.mean_known_fraction - 1e-9,
        "larger budget must not know less: {} vs {}",
        large_report.mean_known_fraction,
        small_report.mean_known_fraction
    );
    assert!(
        large_report.mean_total_variation <= small_report.mean_total_variation + 1e-9,
        "larger budget must not be less accurate"
    );
}

/// The budget shrink criteria only change *which* provenance is kept, never
/// the buffered totals; the keep-important criterion keeps the designated
/// origins when they contribute.
#[test]
fn budget_shrink_criteria_are_consistent() {
    let (n, stream) = workload();
    let tin = Tin::from_interactions(n, stream.clone()).unwrap();
    let important = tin.top_k_senders(3);

    let largest = PolicyConfig::Budgeted {
        capacity: 6,
        keep_fraction: 0.7,
        criterion: ShrinkCriterion::KeepLargest,
        important: Vec::new(),
    };
    let important_cfg = PolicyConfig::Budgeted {
        capacity: 6,
        keep_fraction: 0.7,
        criterion: ShrinkCriterion::KeepImportant,
        important: important.clone(),
    };
    let mut by_largest = build_tracker(&largest, n).unwrap();
    let mut by_importance = build_tracker(&important_cfg, n).unwrap();
    by_largest.process_all(&stream);
    by_importance.process_all(&stream);
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(
            (by_largest.buffered(v) - by_importance.buffered(v)).abs() < 1e-6,
            "criteria changed buffered totals at {v}"
        );
    }
}

/// Accuracy improves monotonically along the paper's cost knobs: tracking
/// more vertices selectively can only increase the known fraction.
#[test]
fn selective_accuracy_grows_with_k() {
    let (n, stream) = workload();
    let tin = Tin::from_interactions(n, stream.clone()).unwrap();
    let exact = exact_tracker(n, &stream);
    let mut previous = -1.0;
    for k in [1usize, 4, 16, 64] {
        let mut tracker = build_tracker(
            &PolicyConfig::Selective {
                tracked: tin.top_k_senders(k),
            },
            n,
        )
        .unwrap();
        tracker.process_all(&stream);
        let report = compare_trackers(tracker.as_ref(), exact.as_ref(), 5);
        assert!(
            report.mean_known_fraction >= previous - 1e-9,
            "known fraction dropped when k grew to {k}"
        );
        previous = report.mean_known_fraction;
    }
    assert!(previous > 0.0);
}
