//! Property-based tests for the extension layer (how-provenance on
//! generation-time buffers, lazy/backtracing queries, snapshots, the engine
//! and the flow matrix), over randomly generated interaction streams.

use proptest::prelude::*;
use tin::core::engine::ProvenanceEngine;
use tin::prelude::*;

const MAX_VERTICES: u32 = 10;

/// Strategy: a stream of up to `len` valid interactions over a small vertex
/// set with non-decreasing timestamps (same shape as `proptest_invariants`).
fn interaction_stream(len: usize) -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec(
        (
            0..MAX_VERTICES,
            0..MAX_VERTICES - 1,
            0.01f64..50.0f64,
            0.0f64..3.0f64,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut time = 0.0;
        raw.into_iter()
            .map(|(src, dst_raw, qty, gap)| {
                let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                time += gap;
                Interaction::new(src, dst, time, qty)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The path-annotated trackers (Section 6) never change the origin
    /// decomposition of the policies they extend, and the recorded paths are
    /// internally consistent (they start at the element's origin).
    #[test]
    fn path_trackers_preserve_origins_and_start_paths_at_origins(
        stream in interaction_stream(50)
    ) {
        let n = MAX_VERTICES as usize;
        let mut lrb_paths = GenerationPathTracker::least_recently_born(n);
        let mut lrb_plain = GenerationTimeTracker::least_recently_born(n);
        let mut lifo_paths = PathTracker::lifo(n);
        let mut lifo_plain = ReceiptOrderTracker::lifo(n);
        for r in &stream {
            lrb_paths.process(r);
            lrb_plain.process(r);
            lifo_paths.process(r);
            lifo_plain.process(r);
        }
        for i in 0..n {
            let v = VertexId::from(i);
            prop_assert!(lrb_paths.origins(v).approx_eq(&lrb_plain.origins(v)), "LRB mismatch at {v}");
            prop_assert!(lifo_paths.origins(v).approx_eq(&lifo_plain.origins(v)), "LIFO mismatch at {v}");
            for e in lrb_paths.sorted_elements(v) {
                prop_assert_eq!(e.path.first().copied(), Some(e.origin));
            }
            for e in lifo_paths.elements(v) {
                prop_assert_eq!(e.path.first().copied(), Some(e.origin));
            }
        }
    }

    /// Lazy replay and the backtracing index answer exactly like the eager
    /// tracker, both at the end of the stream and at a random earlier time.
    #[test]
    fn on_demand_queries_match_eager_tracking(
        stream in interaction_stream(40),
        time_fraction in 0.0f64..1.0f64,
    ) {
        let n = MAX_VERTICES as usize;
        let mut eager = ProportionalSparseTracker::new(n);
        let mut lazy = LazyReplayProvenance::proportional(n);
        let mut backtrace = BacktraceIndex::proportional(n);
        for r in &stream {
            eager.process(r);
            lazy.process(r);
            backtrace.process(r);
        }
        let horizon = stream.last().map(|r| r.time.value()).unwrap_or(0.0) * time_fraction;
        let mut eager_prefix = ProportionalSparseTracker::new(n);
        for r in &stream {
            if r.time.value() > horizon {
                break;
            }
            eager_prefix.process(r);
        }
        for i in 0..n {
            let v = VertexId::from(i);
            prop_assert!(lazy.origins(v).approx_eq(&eager.origins(v)), "lazy mismatch at {v}");
            prop_assert!(backtrace.origins(v).approx_eq(&eager.origins(v)), "backtrace mismatch at {v}");
            let lazy_past = lazy.origins_at(v, horizon).unwrap();
            let backtrace_past = backtrace.origins_at(v, horizon).unwrap();
            prop_assert!(lazy_past.approx_eq(&eager_prefix.origins(v)), "lazy time travel mismatch at {v}");
            prop_assert!(backtrace_past.approx_eq(&eager_prefix.origins(v)), "backtrace time travel mismatch at {v}");
        }
    }

    /// Snapshots faithfully capture the tracker state and survive the TSV
    /// round trip, and snapshot diffs sum to the newly generated quantity.
    #[test]
    fn snapshots_roundtrip_and_diffs_are_consistent(stream in interaction_stream(40)) {
        let n = MAX_VERTICES as usize;
        let mut tracker = ProportionalSparseTracker::new(n);
        let empty = ProvenanceSnapshot::capture(&tracker, 0.0);
        tracker.process_all(&stream);
        let last_time = stream.last().map(|r| r.time.value()).unwrap_or(0.0);
        let full = ProvenanceSnapshot::capture(&tracker, last_time);

        // Capture ↔ tracker agreement.
        for i in 0..n {
            let v = VertexId::from(i);
            prop_assert!(full.origins(v).approx_eq(&tracker.origins(v)));
            prop_assert!((full.buffered(v) - tracker.buffered(v)).abs() < 1e-6);
        }
        // TSV round trip.
        let mut buf = Vec::new();
        full.write_tsv(&mut buf).unwrap();
        let parsed = ProvenanceSnapshot::read_tsv(buf.as_slice()).unwrap();
        prop_assert!(parsed.approx_eq(&full));
        // The diff against the empty snapshot accounts for every buffered unit.
        let diff = full.diff_from(&empty);
        let delta_sum: f64 = diff.per_vertex_delta.iter().sum();
        prop_assert!((delta_sum - tracker.total_buffered()).abs() < 1e-6);
    }

    /// The engine's flow accounting is exact: the quantity it classifies as
    /// newborn equals the total quantity left buffered in the network, under
    /// any policy (relayed units are never created or destroyed).
    #[test]
    fn engine_flow_accounting_matches_buffered_totals(stream in interaction_stream(50)) {
        let n = MAX_VERTICES as usize;
        for policy in [SelectionPolicy::NoProvenance, SelectionPolicy::Fifo, SelectionPolicy::ProportionalSparse] {
            let mut engine = ProvenanceEngine::new(&PolicyConfig::Plain(policy), n).unwrap();
            engine.process_all(&stream).unwrap();
            let report = engine.report();
            let buffered = engine.tracker().total_buffered();
            prop_assert!(
                (report.newborn_quantity - buffered).abs() < 1e-6,
                "{policy}: newborn {} vs buffered {}", report.newborn_quantity, buffered
            );
            prop_assert!(report.relayed_quantity >= -1e-9);
            prop_assert!(report.newborn_fraction() <= 1.0 + 1e-9);
        }
    }

    /// The flow matrix is a faithful re-arrangement of the origin sets: its
    /// column sums equal the buffered totals and its cells are non-negative.
    #[test]
    fn flow_matrix_is_consistent_with_the_tracker(stream in interaction_stream(40)) {
        let n = MAX_VERTICES as usize;
        let mut tracker = ProportionalSparseTracker::new(n);
        tracker.process_all(&stream);
        let matrix = FlowMatrix::from_tracker(&tracker);
        let held = matrix.held_per_vertex();
        for (i, held_at_vertex) in held.iter().enumerate().take(n) {
            let v = VertexId::from(i);
            prop_assert!((held_at_vertex - tracker.buffered(v)).abs() < 1e-6, "column sum mismatch at {v}");
            prop_assert!(matrix.financiers_of(v).iter().all(|(_, q)| *q > 0.0));
        }
        prop_assert!((matrix.total_buffered() - tracker.total_buffered()).abs() < 1e-6);
        // Row sums never exceed what the origin actually generated (which is
        // bounded by the total newborn quantity, i.e. everything buffered).
        let generated: f64 = matrix.generated_per_vertex().iter().sum();
        prop_assert!(generated <= matrix.total_buffered() + 1e-6);
    }

    /// Accuracy metrics are well-behaved: comparing any tracker with itself
    /// is exact, and the total variation distance is always within [0, 1].
    #[test]
    fn accuracy_metrics_are_bounded(stream in interaction_stream(40), budget in 2usize..12) {
        let n = MAX_VERTICES as usize;
        let mut exact = build_tracker(&PolicyConfig::Plain(SelectionPolicy::ProportionalSparse), n).unwrap();
        exact.process_all(&stream);
        let self_report = compare_trackers(exact.as_ref(), exact.as_ref(), 3);
        prop_assert!(self_report.is_exact());

        let mut budgeted = build_tracker(&PolicyConfig::budget(budget), n).unwrap();
        budgeted.process_all(&stream);
        let report = compare_trackers(budgeted.as_ref(), exact.as_ref(), 3);
        prop_assert!(report.mean_total_variation >= -1e-12);
        prop_assert!(report.max_total_variation <= 1.0 + 1e-9);
        prop_assert!(report.mean_known_fraction >= -1e-12);
        prop_assert!(report.mean_known_fraction <= 1.0 + 1e-9);
        prop_assert!(report.mean_topk_recall >= -1e-12);
        prop_assert!(report.mean_topk_recall <= 1.0 + 1e-9);
    }
}
