//! Property-based equivalence of the sharded and sequential engines.
//!
//! The tentpole guarantee of the `tin-shard` crate is that wavefront-parallel
//! execution is *bit-identical* to the sequential [`ProvenanceEngine`] — not
//! approximately equal, but the same `f64`s in the same places — because each
//! per-vertex state sees the same operations in the same order executed by
//! the same tracker code. These properties check that claim on random valid
//! streams for every factory-reachable policy configuration and shard counts
//! {1, 2, 4, 7} (1 = trivial degenerate case, 7 = more shards than busy
//! vertices on small streams, so hollow shards and heavy migration both get
//! exercised).

use proptest::prelude::*;
use tin::prelude::*;
use tin_core::engine::ProvenanceEngine;
use tin_shard::ShardedEngine;

const MAX_VERTICES: u32 = 10;

/// Strategy: a stream of up to `len` valid interactions over a small vertex
/// set with non-decreasing timestamps (self-loops avoided by construction).
fn interaction_stream(len: usize) -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec(
        (
            0..MAX_VERTICES,
            0..MAX_VERTICES - 1,
            0.01f64..100.0f64,
            0.0f64..5.0f64,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut time = 0.0;
        raw.into_iter()
            .map(|(src, dst_raw, qty, gap)| {
                let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                time += gap;
                Interaction::new(src, dst, time, qty)
            })
            .collect()
    })
}

/// Every policy configuration the factory can build, including the
/// scope-limited, windowed, budgeted and path-tracking families.
fn all_configs(num_vertices: usize) -> Vec<PolicyConfig> {
    let mut configs: Vec<PolicyConfig> = SelectionPolicy::all()
        .into_iter()
        .map(PolicyConfig::Plain)
        .collect();
    configs.push(PolicyConfig::Selective {
        tracked: vec![VertexId::new(0), VertexId::new(3)],
    });
    configs.push(PolicyConfig::Grouped {
        num_groups: 3,
        group_of: (0..num_vertices).map(|v| (v % 3) as u32).collect(),
    });
    configs.push(PolicyConfig::Windowed { window: 5 });
    configs.push(PolicyConfig::TimeWindowed { duration: 7.5 });
    configs.push(PolicyConfig::adaptive());
    configs.push(PolicyConfig::budget(3));
    configs.push(PolicyConfig::PathTracking { lifo: false });
    configs.push(PolicyConfig::GenerationPaths { most_recent: true });
    configs
}

/// Acceptance criterion: bit-identical output on fixed-seed generated
/// Bitcoin- and taxi-shaped streams (the two shapes `bench_baseline` leans
/// on) for all policies — not just on uniform random streams.
#[test]
fn sharded_matches_sequential_on_generated_datasets() {
    use tin_datasets::{DatasetKind, DatasetSpec, ScaleProfile};
    for kind in [DatasetKind::Bitcoin, DatasetKind::Taxis] {
        let spec = DatasetSpec::with_seed(kind, ScaleProfile::Tiny, 42);
        let n = spec.num_vertices();
        let stream = tin_datasets::generate(&spec);
        for config in all_configs(n) {
            let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
            sequential.process_all(&stream).unwrap();
            let seq_report = sequential.report();
            for shards in [2usize, 4] {
                let mut sharded = ShardedEngine::new(&config, n, shards).unwrap();
                sharded.process_all(&stream).unwrap();
                let report = sharded.report().unwrap();
                assert_eq!(
                    report.total_quantity,
                    seq_report.total_quantity,
                    "total mismatch: {:?} {} shards={shards}",
                    kind,
                    config.key()
                );
                assert_eq!(
                    report.newborn_quantity,
                    seq_report.newborn_quantity,
                    "newborn mismatch: {:?} {} shards={shards}",
                    kind,
                    config.key()
                );
                for v in 0..n {
                    let v = VertexId::from(v);
                    assert_eq!(
                        sharded.buffered(v).unwrap(),
                        sequential.buffered(v),
                        "buffered({v}) mismatch: {:?} {} shards={shards}",
                        kind,
                        config.key()
                    );
                    assert_eq!(
                        sharded.origins(v).unwrap(),
                        sequential.origins(v),
                        "origins({v}) mismatch: {:?} {} shards={shards}",
                        kind,
                        config.key()
                    );
                }
            }
        }
    }
}

/// Observability is invisible to results, and the merged worker metrics
/// account for every interaction exactly once across all shards.
#[test]
fn sharded_observability_merges_worker_metrics_deterministically() {
    use tin_datasets::{DatasetKind, DatasetSpec, ScaleProfile};
    use tin_obs::Obs;
    let spec = DatasetSpec::with_seed(DatasetKind::Bitcoin, ScaleProfile::Tiny, 7);
    let n = spec.num_vertices();
    let stream = tin_datasets::generate(&spec);
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);

    let mut plain = ShardedEngine::new(&config, n, 3).unwrap();
    plain.process_all(&stream).unwrap();
    let plain_report = plain.report().unwrap();

    let mut instrumented = ShardedEngine::new(&config, n, 3)
        .unwrap()
        .with_observability(Obs::new())
        .unwrap()
        .with_footprint_sample_interval(64)
        .unwrap();
    instrumented.process_all(&stream).unwrap();
    let report = instrumented.report().unwrap();
    // Flow totals are bit-identical; `peak_footprint_bytes` is *not*
    // compared because the denser sampling interval legitimately observes
    // different peaks — sampling cadence is not part of the guarantee.
    assert_eq!(report.total_quantity, plain_report.total_quantity);
    assert_eq!(report.newborn_quantity, plain_report.newborn_quantity);

    let obs = instrumented.take_obs().unwrap().expect("sink was attached");
    assert!(instrumented.obs().is_none(), "take_obs detaches the sink");
    let snap = obs.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} registered"))
            .value
    };
    // Every interaction is processed exactly once, either locally on the
    // owning shard or as an import on the destination owner.
    assert_eq!(
        counter("shard_local_interactions_total") + counter("shard_import_interactions_total"),
        stream.len() as u64
    );
    // Each import moves a state out and home again: two migrations per
    // cross-shard interaction.
    assert_eq!(
        counter("shard_state_migrations_total"),
        2 * counter("shard_import_interactions_total")
    );
    let wavefronts = counter("wavefronts_total");
    assert!(wavefronts > 0);
    let sizes = snap
        .histograms
        .iter()
        .find(|h| h.name == "wavefront_batch_interactions_total")
        .expect("wavefront size histogram registered");
    assert_eq!(sizes.count, wavefronts);
    assert_eq!(sizes.sum, stream.len() as u64);
    // The footprint gauge saw the shards' merged samples.
    let footprint = snap
        .gauges
        .iter()
        .find(|g| g.name == "footprint_bytes")
        .expect("footprint gauge registered");
    assert!(footprint.samples > 0 && footprint.last > 0);
    // Worker spans were re-based onto the shared timeline.
    assert!(obs.trace.events().iter().any(|e| e.name == "shard_batch"));
    assert!(obs
        .trace
        .events()
        .iter()
        .any(|e| e.name == "wavefront_dispatch" && e.tid == 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every policy and shard count, the sharded engine reproduces the
    /// sequential engine's `origins(v)`, `buffered(v)` and flow totals
    /// exactly (`==` on floats, not approximate comparison).
    #[test]
    fn sharded_engine_is_bit_identical(stream in interaction_stream(48)) {
        let n = MAX_VERTICES as usize;
        for config in all_configs(n) {
            let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
            sequential.process_all(&stream).unwrap();
            let seq_report = sequential.report();
            for shards in [1usize, 2, 4, 7] {
                let mut sharded = ShardedEngine::new(&config, n, shards).unwrap();
                sharded.process_all(&stream).unwrap();
                let report = sharded.report().unwrap();
                prop_assert_eq!(
                    report.total_quantity,
                    seq_report.total_quantity,
                    "total_quantity mismatch under {} with {} shards",
                    config.key(),
                    shards
                );
                prop_assert_eq!(
                    report.newborn_quantity,
                    seq_report.newborn_quantity,
                    "newborn_quantity mismatch under {} with {} shards",
                    config.key(),
                    shards
                );
                prop_assert_eq!(
                    report.relayed_quantity,
                    seq_report.relayed_quantity,
                    "relayed_quantity mismatch under {} with {} shards",
                    config.key(),
                    shards
                );
                for v in 0..n {
                    let v = VertexId::from(v);
                    prop_assert_eq!(
                        sharded.buffered(v).unwrap(),
                        sequential.buffered(v),
                        "buffered({}) mismatch under {} with {} shards",
                        v,
                        config.key(),
                        shards
                    );
                    prop_assert_eq!(
                        sharded.origins(v).unwrap(),
                        sequential.origins(v),
                        "origins({}) mismatch under {} with {} shards",
                        v,
                        config.key(),
                        shards
                    );
                }
            }
        }
    }

    /// A metrics-and-trace-enabled sharded run is bit-identical to an
    /// uninstrumented sequential run — the observability layer observes,
    /// it never participates. Checked across policies and shard counts.
    #[test]
    fn instrumented_sharded_matches_uninstrumented_sequential(stream in interaction_stream(40)) {
        let n = MAX_VERTICES as usize;
        for config in all_configs(n) {
            let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
            sequential.process_all(&stream).unwrap();
            let seq_report = sequential.report();
            for shards in [2usize, 5] {
                let mut sharded = ShardedEngine::new(&config, n, shards)
                    .unwrap()
                    .with_observability(tin_obs::Obs::new())
                    .unwrap()
                    .with_footprint_sample_interval(16)
                    .unwrap();
                sharded.process_all(&stream).unwrap();
                let report = sharded.report().unwrap();
                prop_assert_eq!(
                    report.total_quantity,
                    seq_report.total_quantity,
                    "instrumented total_quantity mismatch under {} with {} shards",
                    config.key(),
                    shards
                );
                prop_assert_eq!(
                    report.newborn_quantity,
                    seq_report.newborn_quantity,
                    "instrumented newborn_quantity mismatch under {} with {} shards",
                    config.key(),
                    shards
                );
                for v in 0..n {
                    let v = VertexId::from(v);
                    prop_assert_eq!(
                        sharded.buffered(v).unwrap(),
                        sequential.buffered(v),
                        "instrumented buffered({}) mismatch under {} with {} shards",
                        v,
                        config.key(),
                        shards
                    );
                    prop_assert_eq!(
                        sharded.origins(v).unwrap(),
                        sequential.origins(v),
                        "instrumented origins({}) mismatch under {} with {} shards",
                        v,
                        config.key(),
                        shards
                    );
                }
                let obs = sharded.take_obs().unwrap().expect("sink was attached");
                let processed: u64 = obs
                    .snapshot()
                    .counters
                    .iter()
                    .filter(|c| {
                        c.name == "shard_local_interactions_total"
                            || c.name == "shard_import_interactions_total"
                    })
                    .map(|c| c.value)
                    .sum();
                prop_assert_eq!(processed, stream.len() as u64);
            }
        }
    }

    /// Mid-stream queries (which quiesce the shard pipeline) never perturb
    /// later results: interleaving queries with processing still matches a
    /// sequential run.
    #[test]
    fn queries_do_not_perturb_sharded_state(stream in interaction_stream(40)) {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
        let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
        let mut sharded = ShardedEngine::new(&config, n, 3).unwrap();
        for (i, r) in stream.iter().enumerate() {
            sequential.process(r).unwrap();
            sharded.process(r).unwrap();
            if i % 11 == 0 {
                let v = VertexId::from(i % n);
                prop_assert_eq!(sharded.buffered(v).unwrap(), sequential.buffered(v));
                prop_assert_eq!(sharded.origins(v).unwrap(), sequential.origins(v));
            }
        }
        prop_assert_eq!(
            sharded.report().unwrap().newborn_quantity,
            sequential.report().newborn_quantity
        );
    }
}
