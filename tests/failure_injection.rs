//! Failure-injection tests: malformed interactions, unordered streams,
//! broken CSV input and misconfigured trackers must be rejected with precise,
//! typed errors — never silently mis-track provenance.
//!
//! The paper assumes well-formed, time-ordered interaction streams; this file
//! checks the guard rails the library puts around that assumption.

use tin::core::interaction::{paper_running_example, validate_stream};
use tin::core::stream::{InteractionSource, OrderingPolicy, VecSource};
use tin::datasets::io::{read_csv, write_csv};
use tin::prelude::*;

fn v(i: u32) -> VertexId {
    VertexId::new(i)
}

// ---------------------------------------------------------------------------
// Interaction-level validation
// ---------------------------------------------------------------------------

#[test]
fn interactions_with_invalid_quantities_are_rejected() {
    for qty in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = Interaction::try_new(0u32, 1u32, 1.0, qty).unwrap_err();
        assert!(
            matches!(err, TinError::InvalidQuantity { .. }),
            "quantity {qty} produced {err:?}"
        );
    }
}

#[test]
fn interactions_with_invalid_timestamps_are_rejected() {
    for time in [-1.0, f64::NAN, f64::INFINITY] {
        let err = Interaction::try_new(0u32, 1u32, time, 2.0).unwrap_err();
        assert!(
            matches!(err, TinError::InvalidTimestamp { .. }),
            "time {time} produced {err:?}"
        );
    }
    // Time zero is a legal start of the timeline.
    assert!(Interaction::try_new(0u32, 1u32, 0.0, 2.0).is_ok());
}

#[test]
fn self_loops_are_rejected() {
    let err = Interaction::try_new(3u32, 3u32, 1.0, 2.0).unwrap_err();
    assert_eq!(
        err,
        TinError::SelfLoop {
            vertex: v(3),
            position: None
        }
    );
    assert!(!Interaction::new(3u32, 3u32, 1.0, 2.0).is_valid());
}

#[test]
fn streams_referencing_unknown_vertices_are_rejected() {
    let stream = vec![
        Interaction::new(0u32, 1u32, 1.0, 1.0),
        Interaction::new(1u32, 9u32, 2.0, 1.0),
    ];
    let err = validate_stream(&stream, 3).unwrap_err();
    assert_eq!(
        err,
        TinError::UnknownVertex {
            vertex: v(9),
            num_vertices: 3
        }
    );
    // The same stream is fine with a large enough vertex set.
    assert!(validate_stream(&stream, 10).is_ok());
}

#[test]
fn tin_constructor_propagates_validation_errors() {
    let bad_vertex = vec![Interaction::new(0u32, 5u32, 1.0, 1.0)];
    assert!(matches!(
        Tin::from_interactions(3, bad_vertex).unwrap_err(),
        TinError::UnknownVertex { .. }
    ));

    let bad_quantity = vec![Interaction::new(0u32, 1u32, 1.0, -2.0)];
    assert!(matches!(
        Tin::from_interactions(3, bad_quantity).unwrap_err(),
        TinError::InvalidQuantity { .. }
    ));

    // An empty interaction set builds an empty (but valid) TIN.
    let empty = Tin::from_interactions_auto(Vec::new()).unwrap();
    assert_eq!(empty.num_vertices(), 0);
    assert_eq!(empty.num_interactions(), 0);
}

// ---------------------------------------------------------------------------
// Stream-level ordering validation
// ---------------------------------------------------------------------------

#[test]
fn strict_sources_reject_out_of_order_interactions() {
    let unordered = vec![
        Interaction::new(0u32, 1u32, 5.0, 1.0),
        Interaction::new(1u32, 2u32, 3.0, 1.0),
    ];
    let mut source = VecSource::new(unordered.clone());
    assert!(source.next_interaction().unwrap().is_some());
    let err = source.next_interaction().unwrap_err();
    assert_eq!(
        err,
        TinError::OutOfOrder {
            position: 1,
            previous: 5.0,
            current: 3.0
        }
    );

    // The permissive policy accepts the same stream in full.
    let mut permissive = VecSource::with_policy(unordered, OrderingPolicy::Permissive);
    let collected = permissive.collect_all().unwrap();
    assert_eq!(collected.len(), 2);
}

#[test]
fn process_source_stops_at_the_first_error_and_keeps_consistent_state() {
    let stream = vec![
        Interaction::new(0u32, 1u32, 1.0, 2.0),
        Interaction::new(1u32, 2u32, 2.0, 3.0),
        Interaction::new(2u32, 0u32, 1.0, 1.0), // goes back in time
        Interaction::new(0u32, 2u32, 4.0, 1.0), // never reached
    ];
    let mut tracker = ProportionalSparseTracker::new(3);
    let mut source = VecSource::new(stream);
    let err = tracker.process_source(&mut source).unwrap_err();
    assert!(matches!(err, TinError::OutOfOrder { position: 2, .. }));
    // Exactly the two valid prefix interactions were applied, and the
    // provenance state they produced is still internally consistent.
    assert_eq!(tracker.interactions_processed(), 2);
    assert!(tracker.check_all_invariants());
    // v0 generated 2 units (now relayed onward) and v1 generated 1 unit, so
    // exactly 3 units are buffered at v2 after the valid prefix.
    assert!((tracker.total_buffered() - 3.0).abs() < 1e-9);
    assert!((tracker.buffered(v(2)) - 3.0).abs() < 1e-9);
}

#[test]
fn mid_stream_invalid_quantity_reports_its_position() {
    let stream = vec![
        Interaction::new(0u32, 1u32, 1.0, 2.0),
        Interaction::new(1u32, 2u32, 2.0, f64::NAN),
    ];
    let mut source = VecSource::new(stream);
    assert!(source.next_interaction().is_ok());
    match source.next_interaction().unwrap_err() {
        TinError::InvalidQuantity { position, .. } => assert_eq!(position, Some(1)),
        other => panic!("expected InvalidQuantity, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// CSV parsing
// ---------------------------------------------------------------------------

#[test]
fn csv_round_trip_preserves_interactions() {
    let interactions = paper_running_example();
    let mut bytes = Vec::new();
    write_csv(&mut bytes, &interactions).unwrap();
    let parsed = read_csv(bytes.as_slice()).unwrap();
    assert_eq!(parsed, interactions);
}

#[test]
fn csv_with_wrong_field_count_is_a_parse_error() {
    let err = read_csv("0,1,2.0\n".as_bytes()).unwrap_err();
    match err {
        TinError::Parse { line, message } => {
            assert_eq!(line, 1);
            assert!(message.contains("4 fields"), "message: {message}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn csv_with_malformed_numbers_reports_line_numbers() {
    let text = "src,dst,time,qty\n0,1,1.0,2.0\n0,banana,2.0,1.0\n";
    let err = read_csv(text.as_bytes()).unwrap_err();
    match err {
        TinError::Parse { line, message } => {
            assert_eq!(line, 3);
            assert!(message.contains("banana"), "message: {message}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn csv_with_invalid_quantity_is_rejected_at_validation() {
    let text = "0 1 1.0 -5.0\n";
    let err = read_csv(text.as_bytes()).unwrap_err();
    assert!(matches!(err, TinError::InvalidQuantity { .. }), "{err:?}");
}

#[test]
fn csv_skips_comments_blank_lines_and_header_and_sorts_by_time() {
    let text = "src,dst,time,qty\n# a comment\n\n2 0 9.0 1.5\n0\t1\t1.0\t2.5\n";
    let parsed = read_csv(text.as_bytes()).unwrap();
    assert_eq!(parsed.len(), 2);
    // Whitespace- and tab-separated rows are both accepted and the result is
    // sorted by time even though the input was not.
    assert_eq!(parsed[0], Interaction::new(0u32, 1u32, 1.0, 2.5));
    assert_eq!(parsed[1], Interaction::new(2u32, 0u32, 9.0, 1.5));
}

#[test]
fn missing_csv_file_is_an_io_error() {
    let err = tin::datasets::io::read_csv_file("/nonexistent/definitely-missing.csv").unwrap_err();
    assert!(matches!(err, TinError::Io(_)), "{err:?}");
}

// ---------------------------------------------------------------------------
// Tracker configuration
// ---------------------------------------------------------------------------

#[test]
fn misconfigured_trackers_are_rejected_with_invalid_config() {
    let bad_configs = vec![
        PolicyConfig::Selective { tracked: vec![] },
        PolicyConfig::Grouped {
            num_groups: 0,
            group_of: vec![],
        },
        // Group mapping of the wrong length.
        PolicyConfig::Grouped {
            num_groups: 2,
            group_of: vec![0, 1],
        },
        PolicyConfig::Windowed { window: 0 },
        PolicyConfig::TimeWindowed { duration: 0.0 },
        PolicyConfig::TimeWindowed { duration: f64::NAN },
        PolicyConfig::budget(0),
        PolicyConfig::Budgeted {
            capacity: 10,
            keep_fraction: 0.0,
            criterion: ShrinkCriterion::KeepLargest,
            important: vec![],
        },
        PolicyConfig::Budgeted {
            capacity: 10,
            keep_fraction: 1.5,
            criterion: ShrinkCriterion::KeepLargest,
            important: vec![],
        },
    ];
    for config in bad_configs {
        let err = match build_tracker(&config, 3) {
            Err(e) => e,
            Ok(_) => panic!("config {} was unexpectedly accepted", config.key()),
        };
        assert!(
            matches!(err, TinError::InvalidConfig(_)),
            "config {} produced {err:?}",
            config.key()
        );
    }
}

#[test]
fn selective_tracking_rejects_out_of_range_tracked_vertices() {
    let config = PolicyConfig::Selective {
        tracked: vec![v(7)],
    };
    assert!(build_tracker(&config, 3).is_err());
}

// ---------------------------------------------------------------------------
// Sharded-engine worker failure
// ---------------------------------------------------------------------------

/// Streams the paper running example into a sharded engine, kills one worker
/// mid-flight, and asserts the engine surfaces [`TinError::WorkerLost`]
/// instead of hanging. A watchdog thread turns a hang into a loud panic so
/// the failure mode is a test failure, not a stuck CI job.
#[test]
fn killed_shard_worker_fails_fast_instead_of_hanging() {
    use std::sync::mpsc;

    let (done_tx, done_rx) = mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        if done_rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .is_err()
        {
            panic!("sharded engine hung after a worker was killed");
        }
    });

    let stream = paper_running_example();
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let mut engine = tin::shard::ShardedEngine::new(&config, 5, 3).unwrap();
    engine.process_all(&stream).unwrap();

    engine.inject_worker_panic(1).unwrap();

    // Every subsequent entry point must fail fast with WorkerLost. Looping
    // `process` guarantees we eventually observe the failure even if the
    // first call wins the race against the sentinel's notification.
    let mut saw_worker_lost = false;
    for i in 0..64u32 {
        let interaction =
            Interaction::try_new(i % 5, (i + 1) % 5, 1_000.0 + f64::from(i), 1.0).unwrap();
        match engine.process(&interaction) {
            Ok(()) => continue,
            Err(TinError::WorkerLost { .. }) => {
                saw_worker_lost = true;
                break;
            }
            Err(other) => panic!("expected WorkerLost, got {other:?}"),
        }
    }
    if !saw_worker_lost {
        // The stash may have absorbed every enqueue without touching the dead
        // worker; the synchronous report barrier must still detect the loss.
        match engine.report() {
            Err(TinError::WorkerLost { .. }) => {}
            other => panic!("expected WorkerLost from report(), got {other:?}"),
        }
    }

    // Once poisoned, every query keeps failing with the original error —
    // the engine never silently serves partial provenance.
    assert!(matches!(engine.report(), Err(TinError::WorkerLost { .. })));
    assert!(matches!(
        engine.buffered_all(),
        Err(TinError::WorkerLost { .. })
    ));
    assert!(matches!(
        engine.origins(v(0)),
        Err(TinError::WorkerLost { .. })
    ));

    // Drop must also terminate cleanly (surviving workers shut down).
    drop(engine);
    done_tx.send(()).unwrap();
    watchdog.join().unwrap();
}

// ---------------------------------------------------------------------------
// Checkpoint I/O fault injection
// ---------------------------------------------------------------------------

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tin::core::checkpoint::CheckpointStore;
use tin::core::engine::ProvenanceEngine;

fn fault_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tin_fault_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Crash-at-interaction-K harness: drive a durably checkpointed engine,
/// abandon it after `k` interactions (the simulated crash loses all
/// in-memory state), then recover from the newest on-disk checkpoint and
/// replay the tail of the stream.
fn crash_at(
    stream: &[Interaction],
    config: &PolicyConfig,
    num_vertices: usize,
    k: usize,
    every: usize,
    dir: &std::path::Path,
) -> ProvenanceEngine {
    let store = CheckpointStore::open(dir).unwrap();
    let mut engine = ProvenanceEngine::new(config, num_vertices)
        .unwrap()
        .with_durable_checkpoints(store, every)
        .unwrap();
    for r in &stream[..k] {
        engine.process(r).unwrap();
    }
    drop(engine); // crash: everything in memory is gone

    let store = CheckpointStore::open(dir).unwrap();
    let (_, checkpoint) = store
        .load_latest_valid()
        .unwrap()
        .expect("at least one checkpoint was persisted before the crash");
    let mut resumed = ProvenanceEngine::resume_from(&checkpoint).unwrap();
    for r in &stream[checkpoint.cursor.processed..] {
        resumed.process(r).unwrap();
    }
    resumed
}

#[test]
fn crash_at_every_interaction_k_recovers_bit_identically() {
    let stream = paper_running_example();
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let mut reference = ProvenanceEngine::new(&config, 3).unwrap();
    reference.process_all(&stream).unwrap();

    // Crash after every K that has at least one checkpoint on disk
    // (checkpoints are taken every 2 interactions).
    for k in 2..=stream.len() {
        let dir = fault_dir(&format!("crash_k{k}"));
        let resumed = crash_at(&stream, &config, 3, k, 2, &dir);
        for i in 0..3u32 {
            assert_eq!(
                resumed.buffered(v(i)),
                reference.buffered(v(i)),
                "buffered({i}) after crash at k={k}"
            );
            assert_eq!(
                resumed.origins(v(i)),
                reference.origins(v(i)),
                "origins({i}) after crash at k={k}"
            );
        }
        let (resumed_cursor, reference_cursor) = (resumed.cursor(), reference.cursor());
        assert_eq!(resumed_cursor.processed, reference_cursor.processed);
        assert_eq!(
            resumed_cursor.total_quantity,
            reference_cursor.total_quantity
        );
        assert_eq!(
            resumed_cursor.newborn_quantity,
            reference_cursor.newborn_quantity
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn transient_checkpoint_io_faults_are_absorbed_by_retry() {
    let dir = fault_dir("transient");
    let mut store = CheckpointStore::open(&dir)
        .unwrap()
        .with_retry(3, Duration::from_millis(1));
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    store.set_fault_hook(Box::new(move || {
        // The first two attempts of every save hit a transient I/O error;
        // the third succeeds, so retry-with-backoff must absorb them all.
        if seen.fetch_add(1, Ordering::SeqCst) % 3 < 2 {
            Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient fault",
            ))
        } else {
            Ok(())
        }
    }));

    let stream = paper_running_example();
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalDense);
    let mut engine = ProvenanceEngine::new(&config, 3)
        .unwrap()
        .with_durable_checkpoints(store, 2)
        .unwrap();
    // No error escapes to the caller despite every save failing twice.
    engine.process_all(&stream).unwrap();
    assert_eq!(engine.report().checkpoints_taken, 3);
    assert_eq!(attempts.load(Ordering::SeqCst), 9, "3 attempts per save");

    // The surviving files are valid: recovery finds the newest one.
    let store = CheckpointStore::open(&dir).unwrap();
    let (_, checkpoint) = store.load_latest_valid().unwrap().unwrap();
    assert_eq!(checkpoint.cursor.processed, stream.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_checkpoint_retries_surface_io_and_leave_no_partial_file() {
    let dir = fault_dir("persistent");
    let mut store = CheckpointStore::open(&dir)
        .unwrap()
        .with_retry(2, Duration::from_millis(1));
    store.set_fault_hook(Box::new(|| {
        Err(std::io::Error::other("injected persistent fault"))
    }));

    let stream = paper_running_example();
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let mut engine = ProvenanceEngine::new(&config, 3)
        .unwrap()
        .with_durable_checkpoints(store, 2)
        .unwrap();
    engine.process(&stream[0]).unwrap();
    let err = engine.process(&stream[1]).unwrap_err();
    assert!(matches!(err, TinError::Io(_)), "{err:?}");

    // The failed save left no file — partial checkpoints are never visible
    // under the final name, even when every retry is exhausted.
    let store = CheckpointStore::open(&dir).unwrap();
    assert!(store.list().unwrap().is_empty());

    // The interaction itself was applied before the checkpoint attempt, so
    // the in-memory state is still consistent and processing can continue.
    assert_eq!(engine.cursor().processed, 2);
    let mut reference = ProvenanceEngine::new(&config, 3).unwrap();
    reference.process_all(&stream[..2]).unwrap();
    for i in 0..3u32 {
        assert_eq!(engine.buffered(v(i)), reference.buffered(v(i)));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker killed before *any* interaction is processed must poison the
/// engine on the very first barrier, and surviving shards must exit cleanly.
#[test]
fn worker_killed_before_first_batch_poisons_report() {
    let config = PolicyConfig::Grouped {
        num_groups: 2,
        group_of: vec![0, 1, 0, 1, 0, 1, 0, 1],
    };
    let mut engine = tin::shard::ShardedEngine::new(&config, 8, 4).unwrap();
    engine.inject_worker_panic(0).unwrap();
    match engine.report() {
        Err(TinError::WorkerLost { .. }) => {}
        other => panic!("expected WorkerLost, got {other:?}"),
    }
    // Poisoning is sticky: injecting another panic is rejected too.
    assert!(matches!(
        engine.inject_worker_panic(2),
        Err(TinError::WorkerLost { .. })
    ));
}
