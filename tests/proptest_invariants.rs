//! Property-based tests over randomly generated interaction streams.
//!
//! These check the invariants the paper's correctness argument rests on, for
//! arbitrary (not just dataset-shaped) inputs:
//!
//! 1. buffer totals are policy-independent and non-negative;
//! 2. `Σ_{τ ∈ O(t,B_v)} τ.q = |B_v|` at every vertex for every policy
//!    (Definition 2);
//! 3. global conservation: everything buffered was generated somewhere;
//! 4. dense and sparse proportional tracking are interchangeable;
//! 5. the scope-limiting techniques never invent provenance.

use proptest::prelude::*;
use tin::prelude::*;

const MAX_VERTICES: u32 = 12;

/// Strategy: a stream of up to `len` valid interactions over a small vertex
/// set with non-decreasing integer timestamps.
fn interaction_stream(len: usize) -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec(
        (
            0..MAX_VERTICES,
            0..MAX_VERTICES - 1,
            0.01f64..100.0f64,
            0.0f64..5.0f64,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut time = 0.0;
        raw.into_iter()
            .map(|(src, dst_raw, qty, gap)| {
                // Avoid self-loops by shifting the destination past the source.
                let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                time += gap;
                Interaction::new(src, dst, time, qty)
            })
            .collect()
    })
}

fn all_plain_trackers(n: usize) -> Vec<Box<dyn ProvenanceTracker>> {
    SelectionPolicy::all()
        .iter()
        .map(|p| build_tracker(&PolicyConfig::Plain(*p), n).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Buffer totals are the same under every policy, after every interaction.
    #[test]
    fn buffer_totals_are_policy_independent(stream in interaction_stream(60)) {
        let n = MAX_VERTICES as usize;
        let mut trackers = all_plain_trackers(n);
        for r in &stream {
            for t in trackers.iter_mut() {
                t.process(r);
            }
            for i in 0..n {
                let v = VertexId::from(i);
                let reference = trackers[0].buffered(v);
                prop_assert!(reference >= -1e-9);
                for t in &trackers {
                    prop_assert!(
                        (t.buffered(v) - reference).abs() < 1e-6,
                        "{} disagrees at {} ({} vs {})", t.name(), v, t.buffered(v), reference
                    );
                }
            }
        }
    }

    /// Definition 2 invariant: origins always sum to the buffered quantity.
    #[test]
    fn origin_sets_sum_to_buffer(stream in interaction_stream(60)) {
        let n = MAX_VERTICES as usize;
        let mut trackers = all_plain_trackers(n);
        for r in &stream {
            for t in trackers.iter_mut() {
                t.process(r);
            }
        }
        for t in &trackers {
            prop_assert!(t.check_all_invariants(), "{} violated Definition 2", t.name());
        }
    }

    /// Global conservation: total buffered equals total newborn quantity.
    #[test]
    fn global_conservation(stream in interaction_stream(80)) {
        let n = MAX_VERTICES as usize;
        let mut baseline = NoProvTracker::new(n);
        baseline.process_all(&stream);
        let generated: f64 = baseline.generated_per_vertex().iter().sum();
        for policy in SelectionPolicy::all() {
            let mut t = build_tracker(&PolicyConfig::Plain(policy), n).unwrap();
            t.process_all(&stream);
            prop_assert!((t.total_buffered() - generated).abs() < 1e-6 * generated.max(1.0));
        }
    }

    /// Dense and sparse proportional trackers are interchangeable.
    #[test]
    fn proportional_representations_agree(stream in interaction_stream(60)) {
        let n = MAX_VERTICES as usize;
        let mut dense = ProportionalDenseTracker::new(n);
        let mut sparse = ProportionalSparseTracker::new(n);
        dense.process_all(&stream);
        sparse.process_all(&stream);
        for i in 0..n {
            let v = VertexId::from(i);
            prop_assert!(dense.origins(v).approx_eq(&sparse.origins(v)), "mismatch at {}", v);
        }
    }

    /// Selective tracking reports exact quantities for tracked origins and
    /// aggregates the rest; it never attributes more to a tracked origin than
    /// the exact tracker does.
    #[test]
    fn selective_tracking_never_invents_provenance(
        stream in interaction_stream(60),
        k in 1usize..6,
    ) {
        let n = MAX_VERTICES as usize;
        let tracked: Vec<VertexId> = (0..k as u32).map(VertexId::new).collect();
        let mut selective = SelectiveTracker::new(n, tracked.clone()).unwrap();
        let mut exact = ProportionalDenseTracker::new(n);
        selective.process_all(&stream);
        exact.process_all(&stream);
        for i in 0..n {
            let v = VertexId::from(i);
            let so = selective.origins(v);
            let eo = exact.origins(v);
            for &tv in &tracked {
                prop_assert!((so.quantity_from_vertex(tv) - eo.quantity_from_vertex(tv)).abs() < 1e-6);
            }
            prop_assert!((so.total() - eo.total()).abs() < 1e-6);
        }
    }

    /// Windowed (count- and time-based) and budget-based tracking: totals are
    /// exact, concrete attributions are a subset of the exact ones, and the
    /// invariant holds.
    #[test]
    fn scope_limiting_is_sound(
        stream in interaction_stream(60),
        window in 1usize..20,
        duration in 0.5f64..40.0,
        capacity in 1usize..8,
    ) {
        let n = MAX_VERTICES as usize;
        let mut exact = ProportionalSparseTracker::new(n);
        let mut windowed = WindowedTracker::new(n, window).unwrap();
        let mut time_windowed = TimeWindowedTracker::new(n, duration).unwrap();
        let mut budget = BudgetTracker::new(n, capacity, 0.7).unwrap();
        exact.process_all(&stream);
        windowed.process_all(&stream);
        time_windowed.process_all(&stream);
        budget.process_all(&stream);
        for i in 0..n {
            let v = VertexId::from(i);
            let eo = exact.origins(v);
            for (label, t) in [
                ("windowed", &windowed as &dyn ProvenanceTracker),
                ("time_windowed", &time_windowed),
                ("budget", &budget),
            ] {
                prop_assert!((t.buffered(v) - exact.buffered(v)).abs() < 1e-6, "{label} total at {v}");
                prop_assert!(t.check_origin_invariant(v), "{label} invariant at {v}");
                for (o, q) in t.origins(v).iter() {
                    if let Some(vertex) = o.as_vertex() {
                        prop_assert!(
                            q <= eo.quantity_from_vertex(vertex) + 1e-6,
                            "{label} over-attributes {o} at {v}"
                        );
                    }
                }
            }
        }
    }

    /// Path tracking: per-element paths start at the element's origin and the
    /// provenance matches the plain receipt-order tracker.
    #[test]
    fn paths_start_at_origin_and_preserve_provenance(stream in interaction_stream(60)) {
        let n = MAX_VERTICES as usize;
        let mut with_paths = PathTracker::lifo(n);
        let mut plain = ReceiptOrderTracker::lifo(n);
        with_paths.process_all(&stream);
        plain.process_all(&stream);
        for i in 0..n {
            let v = VertexId::from(i);
            prop_assert!(with_paths.origins(v).approx_eq(&plain.origins(v)));
            for e in with_paths.elements(v) {
                prop_assert!(!e.path.is_empty());
                prop_assert_eq!(e.path[0], e.origin);
                // The current holder is never recorded inside the path's tail...
                // (the origin may equal the holder only transiently, never here
                // because self-loops are impossible).
                prop_assert!(*e.path.last().unwrap() != v);
            }
        }
    }

    /// The heap buffer preserves quantity under arbitrary push/take sequences.
    #[test]
    fn heap_buffer_conserves_quantity(
        ops in prop::collection::vec((0u32..5, 0.0f64..10.0, 1.0f64..50.0, prop::bool::ANY), 1..80)
    ) {
        use tin::core::buffer::heap_buffer::{HeapBuffer, HeapKind};
        use tin::core::buffer::Triple;
        let mut buf = HeapBuffer::new(HeapKind::LeastRecentlyBorn);
        let mut pushed = 0.0f64;
        let mut taken = 0.0f64;
        for (origin, qty, birth, is_take) in ops {
            if is_take {
                taken += buf.take(qty, |_| {});
            } else if qty > 0.0 {
                buf.push(Triple::new(origin, birth, qty));
                pushed += qty;
            }
        }
        prop_assert!((pushed - taken - buf.total()).abs() < 1e-6);
    }
}
