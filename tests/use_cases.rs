//! Integration tests for the paper's use cases and the lazy-replay extension,
//! exercised end-to-end through the facade crate on synthetic workloads.

use tin::analytics::alerts::{AlertConfig, AlertEngine};
use tin::prelude::*;

fn taxi_workload() -> (usize, Vec<Interaction>) {
    let spec = DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Tiny);
    (spec.num_vertices(), tin::datasets::generate(&spec))
}

/// Section 8 extension end to end on a generated workload: the diffusion
/// tracker's influence accounting is conservative, every vertex buffers at
/// least as much as under the relay model, and the mining primitives produce
/// a well-formed answer on the resulting provenance state.
#[test]
fn diffusion_influence_and_mining_on_a_generated_workload() {
    let spec = DatasetSpec::with_seed(DatasetKind::Ctu, ScaleProfile::Tiny, 11);
    let n = spec.num_vertices();
    let stream = tin::datasets::generate(&spec);

    let mut diffusion = DiffusionTracker::new(n);
    let mut relay = ProportionalSparseTracker::new(n);
    for r in &stream {
        diffusion.process(r);
        relay.process(r);
    }
    assert!(diffusion.check_all_invariants());
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(diffusion.buffered(v) + 1e-6 >= relay.buffered(v));
    }

    // Influence is conservative and the top origin actually reaches someone.
    let ranking = diffusion.influence_ranking(n);
    let total_influence: f64 = ranking.iter().map(|(_, q)| q).sum();
    assert!(
        (total_influence - diffusion.total_buffered()).abs()
            < 1e-6 * diffusion.total_buffered().max(1.0)
    );
    let (top_origin, top_influence) = ranking[0];
    assert!(top_influence > 0.0);
    assert!(diffusion.reach_of(top_origin) >= 1);

    // Mining the provenance state: recurrent origins are reported in
    // descending support, and clustering partitions the occupied vertices.
    let recurrent = recurrent_origins(&diffusion, 0.1);
    for pair in recurrent.windows(2) {
        assert!(pair[0].support + 1e-12 >= pair[1].support);
    }
    let clusters = cluster_by_provenance(&diffusion, 0.8);
    let clustered: usize = clusters.iter().map(|c| c.len()).sum();
    let occupied = (0..n)
        .map(VertexId::from)
        .filter(|&v| diffusion.buffered(v) > 0.0)
        .count();
    assert_eq!(clustered, occupied);
}

/// Figure 2 use case: the accumulation series of the busiest zone is
/// consistent across selection policies in its *totals* (the provenance
/// breakdown differs, the buffered series does not).
#[test]
fn accumulation_series_totals_are_policy_independent() {
    let (n, rs) = taxi_workload();
    let tin_graph = Tin::from_interactions(n, rs.clone()).unwrap();
    let watched = tin_graph
        .vertices()
        .max_by_key(|v| tin_graph.in_degree(*v))
        .unwrap();

    let mut series = Vec::new();
    for policy in [
        SelectionPolicy::Fifo,
        SelectionPolicy::LeastRecentlyBorn,
        SelectionPolicy::ProportionalDense,
    ] {
        let mut tracker = build_tracker(&PolicyConfig::Plain(policy), n).unwrap();
        series.push(record_series(tracker.as_mut(), &rs, watched));
    }
    let reference = &series[0];
    for other in &series[1..] {
        assert_eq!(reference.samples.len(), other.samples.len());
        for (a, b) in reference.samples.iter().zip(&other.samples) {
            assert_eq!(a.interaction_index, b.interaction_index);
            assert!((a.buffered - b.buffered).abs() < 1e-6);
        }
    }
}

/// Figure 9 use case: the alert engine is deterministic and its alerts carry
/// consistent provenance counts under the proportional policy.
#[test]
fn alert_engine_is_deterministic() {
    let spec = DatasetSpec::new(DatasetKind::Bitcoin, ScaleProfile::Tiny);
    let rs = tin::datasets::generate(&spec);
    let n = spec.num_vertices();
    let avg = rs.iter().map(|r| r.qty).sum::<f64>() / rs.len() as f64;
    let config = AlertConfig {
        quantity_threshold: 5.0 * avg,
        require_no_neighbor_origin: true,
    };
    let run = |rs: &[Interaction]| {
        let mut tracker = ProportionalSparseTracker::new(n);
        AlertEngine::run_stream(&mut tracker, rs, config)
    };
    let a = run(&rs);
    let b = run(&rs);
    assert_eq!(a, b);
    for alert in &a {
        assert!(alert.buffered > config.quantity_threshold);
        assert!(alert.interaction_index < rs.len());
    }
}

/// Lazy replay provenance answers the same questions as the eager trackers on
/// a realistic workload, including time-travel queries at an intermediate
/// timestamp.
#[test]
fn lazy_replay_matches_eager_on_synthetic_data() {
    let (n, rs) = taxi_workload();
    let mut lazy = LazyReplayProvenance::proportional(n);
    let mut eager = ProportionalSparseTracker::new(n);
    lazy.process_all(&rs);
    eager.process_all(&rs);

    // Final-state queries agree at a sample of vertices.
    for i in (0..n).step_by(3) {
        let v = VertexId::from(i);
        assert!(
            lazy.origins(v).approx_eq(&eager.origins(v)),
            "mismatch at {v}"
        );
    }

    // Time-travel query at the median timestamp agrees with a prefix replay.
    let mid_time = rs[rs.len() / 2].time.value();
    let prefix: Vec<Interaction> = rs
        .iter()
        .copied()
        .filter(|r| r.time.value() <= mid_time)
        .collect();
    let mut eager_prefix = ProportionalSparseTracker::new(n);
    eager_prefix.process_all(&prefix);
    for i in (0..n).step_by(5) {
        let v = VertexId::from(i);
        assert!(lazy
            .origins_at(v, mid_time)
            .unwrap()
            .approx_eq(&eager_prefix.origins(v)));
    }
}

/// Grouped tracking with an attribute-based grouping: group provenance equals
/// the sum of its members' exact provenance (medium-sized check on top of the
/// unit-level one).
#[test]
fn attribute_grouping_end_to_end() {
    let (n, rs) = taxi_workload();
    // Attribute: "borough" = vertex id modulo 5.
    let attrs: Vec<u32> = (0..n as u32).map(|v| v % 5).collect();
    let grouping = tin::analytics::grouping::by_attribute(&attrs);
    assert!(grouping.num_groups <= 5);
    let mut grouped = build_tracker(&grouping.to_policy(), n).unwrap();
    let mut exact = ProportionalDenseTracker::new(n);
    grouped.process_all(&rs);
    exact.process_all(&rs);

    for i in 0..n {
        let v = VertexId::from(i);
        for g in 0..grouping.num_groups as u32 {
            let expected: f64 = exact
                .origins(v)
                .iter()
                .filter(|(o, _)| {
                    o.as_vertex()
                        .map(|x| grouping.group_of(x) == g)
                        .unwrap_or(false)
                })
                .map(|(_, q)| q)
                .sum();
            let got = grouped
                .origins(v)
                .quantity_from(Origin::Group(GroupId::new(g)));
            assert!((expected - got).abs() < 1e-6);
        }
    }
}

/// The memory instrumentation reports plausible numbers for an eager tracker:
/// the allocator peak is at least as large as the logical entry footprint for
/// list-heavy trackers.
#[test]
fn memory_scope_measures_tracker_growth() {
    let (n, rs) = taxi_workload();
    let (tracker, report) = tin::memstats::measure(|| {
        let mut t = ProportionalSparseTracker::new(n);
        t.process_all(&rs);
        t
    });
    // Without the counting allocator installed (tests use the system
    // allocator), the report is all zeros; with it, it must cover the lists.
    if tin::memstats::allocator_installed() {
        assert!(report.peak_delta_bytes >= tracker.footprint().entries_bytes);
    } else {
        assert_eq!(report.peak_delta_bytes, 0);
    }
    assert!(tracker.footprint().entries_bytes > 0);
}
