//! Allocation regression test for the `tin-obs` zero-overhead claim.
//!
//! Installs the `tin-memstats` counting allocator for this test binary and
//! asserts that a fully instrumented [`ProvenanceEngine`] — latency
//! histogram observed on every interaction, footprint gauge sampled every
//! 64 interactions, spike counter armed — performs **zero heap allocations**
//! in steady state. Metric handles index into pre-sized vectors, so
//! `inc`/`observe`/`set_gauge` never touch the allocator; this test is the
//! executable form of that contract.
//!
//! This file intentionally contains a single test: the measurement relies on
//! process-global allocator counters, so a concurrently running test in the
//! same binary would pollute the delta.

use tin::prelude::*;
use tin_memstats::CountingAllocator;
use tin_obs::Obs;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_with_metrics_enabled_does_not_allocate() {
    let num_vertices = 16usize;
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let mut engine = ProvenanceEngine::new(&config, num_vertices)
        .expect("valid config")
        .with_observability(Obs::new())
        .with_footprint_sample_interval(64)
        .expect("interval is positive");

    // Seed phase: every vertex generates quantity that reaches every other
    // vertex, so all provenance lists converge on the full origin set and
    // every list/buffer grows to its final capacity. Allocations here are
    // expected (registry construction, list growth).
    let mut time = 0.0;
    let mut interactions = Vec::new();
    for round in 0..50u32 {
        for v in 0..num_vertices as u32 {
            let dst = (v + 1 + round % (num_vertices as u32 - 1)) % num_vertices as u32;
            if dst == v {
                continue;
            }
            time += 1.0;
            let qty = if round % 3 == 0 { 100.0 } else { 1.5 };
            interactions.push(Interaction::new(v, dst, time, qty));
        }
    }
    engine.process_all(&interactions).expect("valid stream");

    // Steady state reached: replaying the same pattern (shifted in time)
    // with the metrics registry live must not allocate — every histogram
    // observation, gauge sample and counter bump lands in storage sized at
    // registration time.
    let replay: Vec<Interaction> = interactions
        .iter()
        .map(|r| Interaction::new(r.src, r.dst, r.time.value() + time, r.qty))
        .collect();
    assert!(
        tin_memstats::allocator_installed(),
        "counting allocator must be active for this test to mean anything"
    );
    let before = tin_memstats::snapshot();
    engine.process_all(&replay).expect("valid stream");
    let after = tin_memstats::snapshot();
    let allocations = after.allocations - before.allocations;
    assert_eq!(
        allocations,
        0,
        "steady-state processing of {} interactions with metrics enabled \
         performed {} heap allocations",
        replay.len(),
        allocations
    );

    // The instrumentation was genuinely live inside the zero-alloc window:
    // one latency observation per interaction and fresh footprint samples.
    let obs = engine.take_obs().expect("observability was attached");
    let snap = obs.snapshot();
    let latency = snap
        .histograms
        .iter()
        .find(|h| h.name == "tracker_latency_ns")
        .expect("engine registers tracker_latency_ns");
    assert_eq!(latency.count as usize, interactions.len() + replay.len());
    let footprint = snap
        .gauges
        .iter()
        .find(|g| g.name == "footprint_bytes")
        .expect("engine registers footprint_bytes");
    assert!(footprint.samples as usize >= (interactions.len() + replay.len()) / 64);
    assert!(footprint.last > 0);
}
