//! Integration tests for the diffusion (copy) propagation extension and the
//! provenance-mining analyses built on top of it (both from the future-work
//! directions of Section 8 of the paper).
//!
//! The deterministic tests pin down the semantics on the paper's running
//! example; the property tests check the model-level relationships between
//! diffusion and relay for arbitrary interaction streams:
//!
//! 1. the per-vertex Definition 2 invariant also holds under diffusion;
//! 2. diffusion dominates relay: every vertex buffers at least as much as
//!    under any relay policy, and the network total never shrinks;
//! 3. influence accounting is conservative: summing influence over origins
//!    equals the total buffered quantity;
//! 4. the mining primitives are well-behaved (similarity is symmetric and
//!    bounded, clustering partitions the occupied vertices).

use proptest::prelude::*;
use tin::prelude::*;

const MAX_VERTICES: u32 = 10;

fn interaction_stream(len: usize) -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec(
        (
            0..MAX_VERTICES,
            0..MAX_VERTICES - 1,
            0.01f64..50.0f64,
            0.0f64..3.0f64,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut time = 0.0;
        raw.into_iter()
            .map(|(src, dst_raw, qty, gap)| {
                let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                time += gap;
                Interaction::new(src, dst, time, qty)
            })
            .collect()
    })
}

#[test]
fn running_example_under_diffusion() {
    let interactions = tin::core::interaction::paper_running_example();
    let mut diffusion = DiffusionTracker::new(3);
    diffusion.process_all(&interactions);

    // Every unit the relay model moves around exists under diffusion too,
    // plus the copies retained by the senders.
    let mut relay = ProportionalSparseTracker::new(3);
    relay.process_all(&interactions);
    assert!(diffusion.total_buffered() > relay.total_buffered());

    // The total generated quantity is identical under both models: generation
    // happens exactly when a source must cover a shortfall, and shortfalls
    // can only be smaller under diffusion (buffers never shrink). On the
    // running example the first transfer out of every vertex is a full-buffer
    // transfer, so the two models generate the same newborn quantities.
    assert!(diffusion.total_generated() >= 1.0);
    assert!(diffusion.check_all_invariants());
}

#[test]
fn influence_identifies_the_root_of_a_relay_chain() {
    // v0 -> v1 -> v2 -> v3: everything traces back to v0.
    let chain = [
        Interaction::new(0u32, 1u32, 1.0, 8.0),
        Interaction::new(1u32, 2u32, 2.0, 4.0),
        Interaction::new(2u32, 3u32, 3.0, 2.0),
    ];
    let mut t = DiffusionTracker::new(4);
    t.process_all(&chain);
    let ranking = t.influence_ranking(4);
    assert_eq!(ranking[0].0, VertexId::new(0));
    assert_eq!(t.reach_of(VertexId::new(0)), 3);
    // Downstream vertices never generated anything, so they have no influence.
    assert!(ranking.iter().all(|(v, _)| *v == VertexId::new(0)));
}

#[test]
fn mining_on_diffusion_state_groups_co_financed_receivers() {
    // Two receivers fed by the same two hubs in the same proportions, plus an
    // unrelated pair.
    let interactions = [
        Interaction::new(0u32, 2u32, 1.0, 2.0),
        Interaction::new(1u32, 2u32, 2.0, 1.0),
        Interaction::new(0u32, 3u32, 3.0, 4.0),
        Interaction::new(1u32, 3u32, 4.0, 2.0),
        Interaction::new(4u32, 5u32, 5.0, 3.0),
    ];
    let mut t = DiffusionTracker::new(6);
    t.process_all(&interactions);

    let pairs = most_similar_pairs(&t, 0.99, 10);
    assert!(pairs
        .iter()
        .any(|p| (p.a, p.b) == (VertexId::new(2), VertexId::new(3))));

    let clusters = cluster_by_provenance(&t, 0.99);
    let containing_v2 = clusters
        .iter()
        .find(|c| c.members.contains(&VertexId::new(2)))
        .expect("v2 is occupied");
    assert!(containing_v2.members.contains(&VertexId::new(3)));
    assert!(!containing_v2.members.contains(&VertexId::new(5)));
}

#[test]
fn diffusion_state_round_trips_through_snapshots() {
    // The diffusion tracker implements the same `ProvenanceTracker` interface
    // as the relay trackers, so the snapshot/persistence layer works on it
    // unchanged.
    let interactions = tin::core::interaction::paper_running_example();
    let mut tracker = DiffusionTracker::new(3);
    tracker.process_all(&interactions);
    let snapshot = ProvenanceSnapshot::capture(&tracker, 8.0);
    assert_eq!(snapshot.num_vertices(), 3);

    let mut bytes = Vec::new();
    snapshot.write_tsv(&mut bytes).unwrap();
    let reloaded = ProvenanceSnapshot::read_tsv(bytes.as_slice()).unwrap();
    for i in 0..3u32 {
        let v = VertexId::new(i);
        assert!(reloaded.origins(v).approx_eq(&tracker.origins(v)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition 2 invariant and monotone growth under diffusion.
    #[test]
    fn diffusion_invariants(stream in interaction_stream(50)) {
        let n = MAX_VERTICES as usize;
        let mut t = DiffusionTracker::new(n);
        let mut previous_total = 0.0;
        for r in &stream {
            t.process(r);
            prop_assert!(t.check_all_invariants());
            let total = t.total_buffered();
            prop_assert!(total + 1e-9 >= previous_total, "total shrank");
            previous_total = total;
        }
        prop_assert_eq!(t.interactions_processed(), stream.len());
    }

    /// Diffusion dominates every relay policy at every vertex.
    #[test]
    fn diffusion_dominates_every_relay_policy(stream in interaction_stream(50)) {
        let n = MAX_VERTICES as usize;
        let mut diffusion = DiffusionTracker::new(n);
        diffusion.process_all(&stream);
        for policy in SelectionPolicy::all() {
            let mut relay = build_tracker(&PolicyConfig::Plain(policy), n).unwrap();
            relay.process_all(&stream);
            for i in 0..n {
                let v = VertexId::from(i);
                prop_assert!(
                    diffusion.buffered(v) + 1e-6 >= relay.buffered(v),
                    "diffusion must dominate {} at {}", relay.name(), v
                );
            }
        }
    }

    /// Influence is conservative: summing it over all origins gives exactly
    /// the total buffered quantity, and reach never exceeds |V| - 1.
    #[test]
    fn influence_accounting_is_conservative(stream in interaction_stream(50)) {
        let n = MAX_VERTICES as usize;
        let mut t = DiffusionTracker::new(n);
        t.process_all(&stream);
        let ranking = t.influence_ranking(n);
        let total_influence: f64 = ranking.iter().map(|(_, q)| q).sum();
        prop_assert!((total_influence - t.total_buffered()).abs() < 1e-6 * t.total_buffered().max(1.0));
        for (origin, influence) in &ranking {
            prop_assert!((t.influence_of(*origin) - influence).abs() < 1e-9);
            prop_assert!(t.reach_of(*origin) < n);
        }
    }

    /// Cosine similarity between arbitrary buffers is symmetric, bounded, and
    /// exactly 1 for a buffer against itself (when non-empty).
    #[test]
    fn provenance_similarity_is_well_behaved(stream in interaction_stream(40)) {
        let n = MAX_VERTICES as usize;
        let mut t = DiffusionTracker::new(n);
        t.process_all(&stream);
        for i in 0..n {
            let a = t.origins(VertexId::from(i));
            if !a.is_empty() {
                prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-9);
            }
            for j in (i + 1)..n {
                let b = t.origins(VertexId::from(j));
                let ab = cosine_similarity(&a, &b);
                let ba = cosine_similarity(&b, &a);
                prop_assert!((ab - ba).abs() < 1e-9);
                prop_assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    /// Clustering partitions the occupied vertices: every vertex with a
    /// non-empty buffer appears in exactly one cluster.
    #[test]
    fn clustering_partitions_occupied_vertices(
        stream in interaction_stream(40),
        threshold in 0.0f64..1.0f64,
    ) {
        let n = MAX_VERTICES as usize;
        let mut t = DiffusionTracker::new(n);
        t.process_all(&stream);
        let clusters = cluster_by_provenance(&t, threshold);
        let mut seen = std::collections::BTreeSet::new();
        for cluster in &clusters {
            prop_assert!(cluster.members.contains(&cluster.representative));
            for member in &cluster.members {
                prop_assert!(seen.insert(*member), "vertex {member} assigned twice");
                prop_assert!(t.buffered(*member) > 0.0);
            }
        }
        let occupied = (0..n).map(VertexId::from).filter(|&v| t.buffered(v) > 0.0).count();
        prop_assert_eq!(seen.len(), occupied);
    }
}
