//! Cross-policy and cross-crate integration tests on synthetic datasets:
//! conservation laws, equivalences between tracker variants, and the accuracy
//! guarantees of the scope-limiting techniques.

use tin::prelude::*;

fn dataset(kind: DatasetKind) -> (usize, Vec<Interaction>) {
    let spec = DatasetSpec::new(kind, ScaleProfile::Tiny);
    (spec.num_vertices(), tin::datasets::generate(&spec))
}

/// Every policy conserves quantity: total buffered across all vertices equals
/// the total newborn quantity measured by the baseline.
#[test]
fn conservation_across_policies_and_datasets() {
    for kind in [
        DatasetKind::Taxis,
        DatasetKind::Flights,
        DatasetKind::ProsperLoans,
    ] {
        let (n, rs) = dataset(kind);
        let mut baseline = NoProvTracker::new(n);
        baseline.process_all(&rs);
        let generated: f64 = baseline.generated_per_vertex().iter().sum();
        for policy in SelectionPolicy::all() {
            let mut t = build_tracker(&PolicyConfig::Plain(policy), n).unwrap();
            t.process_all(&rs);
            let buffered = t.total_buffered();
            assert!(
                (buffered - generated).abs() < 1e-6 * generated.max(1.0),
                "{kind}/{policy}: buffered {buffered} vs generated {generated}"
            );
        }
    }
}

/// Dense and sparse proportional tracking are two representations of the same
/// mathematical model and must produce identical origin sets on real-shaped
/// workloads.
#[test]
fn dense_and_sparse_proportional_agree() {
    let (n, rs) = dataset(DatasetKind::Taxis);
    let mut dense = ProportionalDenseTracker::new(n);
    let mut sparse = ProportionalSparseTracker::new(n);
    dense.process_all(&rs);
    sparse.process_all(&rs);
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(
            dense.origins(v).approx_eq(&sparse.origins(v)),
            "origin mismatch at {v}"
        );
    }
}

/// Selective tracking with the full vertex set degenerates to exact
/// proportional tracking; with a strict subset the tracked origins still get
/// their exact quantities and the rest is aggregated.
#[test]
fn selective_tracking_is_consistent_with_exact() {
    let (n, rs) = dataset(DatasetKind::Taxis);
    let mut exact = ProportionalDenseTracker::new(n);
    exact.process_all(&rs);

    // Track the top-5 generators, as in Section 7.3.
    let mut baseline = NoProvTracker::new(n);
    baseline.process_all(&rs);
    let tracked = baseline.top_k_generators(5);
    let mut selective = SelectiveTracker::new(n, tracked.clone()).unwrap();
    selective.process_all(&rs);

    for i in 0..n {
        let v = VertexId::from(i);
        let exact_origins = exact.origins(v);
        let sel_origins = selective.origins(v);
        // Tracked origins match exactly.
        for &tv in &tracked {
            assert!(
                (exact_origins.quantity_from_vertex(tv) - sel_origins.quantity_from_vertex(tv))
                    .abs()
                    < 1e-6,
                "tracked origin {tv} mismatch at {v}"
            );
        }
        // The "other" bucket holds exactly the rest.
        let exact_rest: f64 = exact_origins
            .iter()
            .filter(|(o, _)| o.as_vertex().map(|x| !tracked.contains(&x)).unwrap_or(true))
            .map(|(_, q)| q)
            .sum();
        assert!(
            (sel_origins.quantity_from(Origin::Untracked) - exact_rest).abs() < 1e-6,
            "untracked bucket mismatch at {v}"
        );
    }
}

/// Grouped tracking aggregates exactly the per-vertex proportional provenance
/// of the group members.
#[test]
fn grouped_tracking_aggregates_exact_provenance() {
    let (n, rs) = dataset(DatasetKind::Taxis);
    let grouping = tin::analytics::grouping::round_robin(n, 4).unwrap();
    let mut grouped = build_tracker(&grouping.to_policy(), n).unwrap();
    let mut exact = ProportionalDenseTracker::new(n);
    grouped.process_all(&rs);
    exact.process_all(&rs);
    for i in 0..n {
        let v = VertexId::from(i);
        let g_origins = grouped.origins(v);
        let e_origins = exact.origins(v);
        for g in 0..4u32 {
            let expected: f64 = e_origins
                .iter()
                .filter(|(o, _)| {
                    o.as_vertex()
                        .map(|x| grouping.group_of(x) == g)
                        .unwrap_or(false)
                })
                .map(|(_, q)| q)
                .sum();
            let got = g_origins.quantity_from(Origin::Group(GroupId::new(g)));
            assert!(
                (expected - got).abs() < 1e-6,
                "group {g} at {v}: exact {expected} vs grouped {got}"
            );
        }
    }
}

/// The windowing technique never loses quantity: the α entry absorbs exactly
/// what was forgotten, and recently generated quantities keep exact
/// provenance.
#[test]
fn windowed_tracking_accuracy() {
    let (n, rs) = dataset(DatasetKind::Taxis);
    let window = rs.len() / 4;
    let mut windowed = WindowedTracker::new(n, window).unwrap();
    let mut exact = ProportionalSparseTracker::new(n);
    windowed.process_all(&rs);
    exact.process_all(&rs);
    let mut known_total = 0.0;
    let mut buffered_total = 0.0;
    for i in 0..n {
        let v = VertexId::from(i);
        assert!((windowed.buffered(v) - exact.buffered(v)).abs() < 1e-6);
        let wo = windowed.origins(v);
        assert!((wo.total() - windowed.buffered(v)).abs() < 1e-6);
        // Every concretely attributed quantity must not exceed the exact one.
        let eo = exact.origins(v);
        for (o, q) in wo.iter() {
            if let Some(vertex) = o.as_vertex() {
                assert!(
                    q <= eo.quantity_from_vertex(vertex) + 1e-6,
                    "windowed over-attributes {o} at {v}"
                );
            }
        }
        known_total += wo.total() - wo.quantity_from(Origin::Unknown);
        buffered_total += windowed.buffered(v);
    }
    // Some provenance is retained overall.
    assert!(known_total > 0.0);
    assert!(known_total <= buffered_total + 1e-6);
}

/// The budget technique: concrete attributions never exceed the exact ones,
/// and the α entry absorbs the difference. Larger budgets retain at least as
/// much concrete provenance as smaller ones (globally).
#[test]
fn budget_tracking_accuracy_improves_with_capacity() {
    let (n, rs) = dataset(DatasetKind::Taxis);
    let mut exact = ProportionalSparseTracker::new(n);
    exact.process_all(&rs);

    let mut known_by_capacity = Vec::new();
    for capacity in [2usize, 8, 64] {
        let mut budget = BudgetTracker::new(n, capacity, 0.7).unwrap();
        budget.process_all(&rs);
        let mut known = 0.0;
        for i in 0..n {
            let v = VertexId::from(i);
            assert!((budget.buffered(v) - exact.buffered(v)).abs() < 1e-6);
            let bo = budget.origins(v);
            let eo = exact.origins(v);
            for (o, q) in bo.iter() {
                if let Some(vertex) = o.as_vertex() {
                    assert!(
                        q <= eo.quantity_from_vertex(vertex) + 1e-6,
                        "budget over-attributes {o} at {v}"
                    );
                    known += q;
                }
            }
        }
        known_by_capacity.push(known);
    }
    assert!(
        known_by_capacity[0] <= known_by_capacity[1] + 1e-6
            && known_by_capacity[1] <= known_by_capacity[2] + 1e-6,
        "concrete provenance should not decrease with capacity: {known_by_capacity:?}"
    );
}

/// Path tracking adds routes without changing provenance, on a realistic
/// workload.
#[test]
fn path_tracking_is_provenance_preserving() {
    let (n, rs) = dataset(DatasetKind::Flights);
    let mut with_paths = PathTracker::lifo(n);
    let mut plain = ReceiptOrderTracker::lifo(n);
    with_paths.process_all(&rs);
    plain.process_all(&rs);
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(with_paths.origins(v).approx_eq(&plain.origins(v)));
    }
    // Flights-style workloads produce long paths (Table 10's outlier row).
    let stats = tin::analytics::path_statistics(&with_paths);
    assert!(stats.avg_path_length > 1.0);
    assert!(stats.paths_bytes > 0);
}

/// CSV round trip through the datasets crate preserves every interaction and
/// therefore the provenance results.
#[test]
fn csv_roundtrip_preserves_provenance() {
    let (n, rs) = dataset(DatasetKind::Taxis);
    let path = std::env::temp_dir().join(format!("tin_roundtrip_{}.csv", std::process::id()));
    tin::datasets::io::write_csv_file(&path, &rs).unwrap();
    let loaded = tin::datasets::io::read_csv_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(rs.len(), loaded.len());

    let mut a = ReceiptOrderTracker::fifo(n);
    let mut b = ReceiptOrderTracker::fifo(n);
    a.process_all(&rs);
    b.process_all(&loaded);
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(a.origins(v).approx_eq(&b.origins(v)));
    }
}
