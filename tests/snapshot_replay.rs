//! Integration tests for the operational layer: the streaming engine,
//! checkpointed snapshots, and the lazy / backtracing on-demand trackers.
//! These all provide alternative routes to the same provenance answers, so
//! the tests check them against each other and against the eager trackers.

use tin::core::engine::{run_ensemble, ProvenanceEngine};
use tin::core::snapshot::CheckpointedProvenance;
use tin::prelude::*;

fn workload() -> (usize, Vec<Interaction>) {
    let spec = DatasetSpec::with_seed(DatasetKind::Taxis, ScaleProfile::Tiny, 11);
    let stream = tin::datasets::generate(&spec);
    (spec.num_vertices(), stream)
}

/// The engine is a validated wrapper: it must produce exactly the same
/// provenance as driving the tracker directly.
#[test]
fn engine_matches_direct_tracker() {
    let (n, stream) = workload();
    for policy in [
        SelectionPolicy::Fifo,
        SelectionPolicy::LeastRecentlyBorn,
        SelectionPolicy::ProportionalSparse,
    ] {
        let config = PolicyConfig::Plain(policy);
        let mut direct = build_tracker(&config, n).unwrap();
        direct.process_all(&stream);

        let mut engine = ProvenanceEngine::new(&config, n).unwrap();
        engine.process_all(&stream).unwrap();

        for i in 0..n {
            let v = VertexId::from(i);
            assert!(
                engine.origins(v).approx_eq(&direct.origins(v)),
                "{policy}: engine diverged at {v}"
            );
        }
        let report = engine.report();
        assert_eq!(report.interactions, stream.len());
        assert!(report.total_quantity > 0.0);
        assert!(report.newborn_quantity <= report.total_quantity + 1e-9);
    }
}

/// Flow accounting is selection-policy independent: every policy relays and
/// generates exactly the same amounts on the same stream (Algorithm 1 decides
/// *how much* moves; the policy only decides *which units*).
#[test]
fn ensemble_reports_identical_flow_accounting() {
    let (n, stream) = workload();
    let configs: Vec<PolicyConfig> = SelectionPolicy::all()
        .into_iter()
        .map(PolicyConfig::Plain)
        .collect();
    let reports = run_ensemble(&configs, n, &stream).unwrap();
    assert_eq!(reports.len(), configs.len());
    let reference = &reports[0];
    for report in &reports {
        assert_eq!(report.interactions, stream.len());
        assert!((report.total_quantity - reference.total_quantity).abs() < 1e-6);
        assert!((report.newborn_quantity - reference.newborn_quantity).abs() < 1e-6);
    }
}

/// An engine checkpoint taken after k interactions equals a fresh tracker fed
/// exactly those k interactions.
#[test]
fn engine_checkpoints_match_prefix_replay() {
    let (n, stream) = workload();
    let interval = stream.len() / 4;
    let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
    let mut engine = ProvenanceEngine::new(&config, n)
        .unwrap()
        .with_checkpoints(interval)
        .unwrap();
    engine.process_all(&stream).unwrap();
    assert!(!engine.checkpoints().is_empty());

    for snapshot in engine.checkpoints() {
        let k = snapshot.interactions_processed;
        let mut prefix = build_tracker(&config, n).unwrap();
        prefix.process_all(&stream[..k]);
        for i in 0..n {
            let v = VertexId::from(i);
            assert!(
                snapshot.origins(v).approx_eq(&prefix.origins(v)),
                "checkpoint after {k} interactions diverged at {v}"
            );
        }
    }
}

/// The CheckpointedProvenance wrapper behaves identically to the tracker it
/// wraps, and its snapshots round-trip through the TSV persistence format.
#[test]
fn checkpointed_wrapper_and_tsv_roundtrip() {
    let (n, stream) = workload();
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let mut plain = build_tracker(&config, n).unwrap();
    plain.process_all(&stream);

    let inner = build_tracker(&config, n).unwrap();
    let mut wrapped = CheckpointedProvenance::new(inner, stream.len() / 3).unwrap();
    wrapped.process_all(&stream);
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(wrapped.origins(v).approx_eq(&plain.origins(v)));
    }
    assert!(wrapped.checkpoints().len() >= 2);

    let last = wrapped.checkpoints().last().unwrap();
    let mut buf = Vec::new();
    last.write_tsv(&mut buf).unwrap();
    let parsed = ProvenanceSnapshot::read_tsv(buf.as_slice()).unwrap();
    assert!(parsed.approx_eq(last));
    assert_eq!(parsed.interactions_processed, last.interactions_processed);
}

/// Lazy replay, backtracing replay and the eager tracker agree at arbitrary
/// query times, for multiple policies.
#[test]
fn lazy_and_backtrace_agree_with_eager_time_travel() {
    let (n, stream) = workload();
    let mut lazy = LazyReplayProvenance::proportional(n);
    let mut backtrace = BacktraceIndex::proportional(n);
    for r in &stream {
        lazy.process(r);
        backtrace.process(r);
    }

    // Pick a handful of query times across the stream.
    let times: Vec<f64> = [stream.len() / 4, stream.len() / 2, stream.len() - 1]
        .iter()
        .map(|&idx| stream[idx].time.value())
        .collect();
    let query_vertices: Vec<VertexId> =
        (0..n).step_by((n / 7).max(1)).map(VertexId::from).collect();

    for &t in &times {
        // Eager reference: replay the prefix directly.
        let mut eager =
            build_tracker(&PolicyConfig::Plain(SelectionPolicy::ProportionalSparse), n).unwrap();
        for r in &stream {
            if r.time.value() > t {
                break;
            }
            eager.process(r);
        }
        for &v in &query_vertices {
            let from_lazy = lazy.origins_at(v, t).unwrap();
            let (from_backtrace, stats) = backtrace
                .origins_at_with_stats(
                    v,
                    t,
                    &PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
                )
                .unwrap();
            assert!(
                from_lazy.approx_eq(&eager.origins(v)),
                "lazy diverged at {v}, t={t}"
            );
            assert!(
                from_backtrace.approx_eq(&eager.origins(v)),
                "backtrace diverged at {v}, t={t}"
            );
            assert!(stats.replayed_interactions <= stats.horizon_interactions);
        }
    }
}

/// The generation-time path tracker never changes the origin decomposition
/// relative to the plain generation-time tracker, across a full synthetic
/// workload, and its reported paths stay within the bounds of the stream.
#[test]
fn generation_path_tracking_is_consistent_at_scale() {
    let (n, stream) = workload();
    let mut with_paths = GenerationPathTracker::least_recently_born(n);
    let mut plain = GenerationTimeTracker::least_recently_born(n);
    with_paths.process_all(&stream);
    plain.process_all(&stream);
    for i in 0..n {
        let v = VertexId::from(i);
        assert!(
            with_paths.origins(v).approx_eq(&plain.origins(v)),
            "diverged at {v}"
        );
    }
    assert!(with_paths.average_path_length() >= 0.0);
    assert!(with_paths.average_path_length() < stream.len() as f64);
    let fp = with_paths.footprint();
    assert!(fp.paths_bytes > 0);
    assert!(fp.total() >= plain.footprint().total() / 2);
}

/// Snapshot diffs detect the accumulation the Figure 2 use case plots: the
/// vertex that the diff reports as fastest accumulator really did gain the
/// most buffered quantity between the two checkpoints.
#[test]
fn snapshot_diffs_identify_accumulators() {
    let (n, stream) = workload();
    let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
    let mut tracker = build_tracker(&config, n).unwrap();
    let half = stream.len() / 2;
    tracker.process_all(&stream[..half]);
    let early = ProvenanceSnapshot::capture(tracker.as_ref(), stream[half - 1].time.value());
    tracker.process_all(&stream[half..]);
    let late = ProvenanceSnapshot::capture(tracker.as_ref(), stream.last().unwrap().time.value());

    let diff = late.diff_from(&early);
    assert_eq!(diff.interactions, stream.len() - half);
    if let Some((vertex, delta)) = diff.fastest_accumulator() {
        let expected = late.buffered(vertex) - early.buffered(vertex);
        assert!((delta - expected).abs() < 1e-9);
        // No other vertex gained more.
        for i in 0..n {
            let v = VertexId::from(i);
            assert!(late.buffered(v) - early.buffered(v) <= delta + 1e-9);
        }
    }
}
