//! Supervised self-healing: a sharded engine with
//! [`tin_shard::RecoveryPolicy`] attached must survive injected worker
//! deaths (and hangs) and still produce results **bit-identical** to an
//! undisturbed run — the same `f64`s in the same places — because recovery
//! restores a quiesced snapshot and replays the suffix in strict stream
//! order through the same scheduling code.
//!
//! Alongside the kill-at-every-K × policy × shard-count equivalence
//! property (the PR's acceptance criterion), this file pins the edge cases:
//! two workers dying in the same wavefront (idempotent poisoning in both
//! fail-fast and healing modes), a worker dying *during* recovery
//! (respawn-within-respawn up to the budget), recovery with durable
//! checkpointing disabled (the in-memory snapshot path), death after the
//! final wavefront but before the last sync barrier, hang detection, and
//! budget exhaustion falling back to the poison path.

use std::time::Duration;

use proptest::prelude::*;
use tin::prelude::*;
use tin_core::engine::ProvenanceEngine;
use tin_shard::{RecoveryPolicy, ShardedEngine};

const MAX_VERTICES: u32 = 10;

/// A fast-respawning recovery policy for tests: 1 ms backoff and a small
/// snapshot interval so short streams still exercise snapshot cycling.
fn healing(max_worker_restarts: usize, snapshot_every: usize) -> RecoveryPolicy {
    RecoveryPolicy {
        max_worker_restarts,
        restart_backoff: Duration::from_millis(1),
        snapshot_every,
        hang_timeout: None,
    }
}

/// Strategy: a stream of up to `len` valid interactions over a small vertex
/// set with non-decreasing timestamps (self-loops avoided by construction).
fn interaction_stream(len: usize) -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec(
        (
            0..MAX_VERTICES,
            0..MAX_VERTICES - 1,
            0.01f64..100.0f64,
            0.0f64..5.0f64,
        ),
        2..len,
    )
    .prop_map(|raw| {
        let mut time = 0.0;
        raw.into_iter()
            .map(|(src, dst_raw, qty, gap)| {
                let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                time += gap;
                Interaction::new(src, dst, time, qty)
            })
            .collect()
    })
}

/// Every policy configuration the factory can build.
fn all_configs(num_vertices: usize) -> Vec<PolicyConfig> {
    let mut configs: Vec<PolicyConfig> = SelectionPolicy::all()
        .into_iter()
        .map(PolicyConfig::Plain)
        .collect();
    configs.push(PolicyConfig::Selective {
        tracked: vec![VertexId::new(0), VertexId::new(3)],
    });
    configs.push(PolicyConfig::Grouped {
        num_groups: 3,
        group_of: (0..num_vertices).map(|v| (v % 3) as u32).collect(),
    });
    configs.push(PolicyConfig::Windowed { window: 5 });
    configs.push(PolicyConfig::TimeWindowed { duration: 7.5 });
    configs.push(PolicyConfig::adaptive());
    configs.push(PolicyConfig::budget(3));
    configs.push(PolicyConfig::PathTracking { lifo: false });
    configs.push(PolicyConfig::GenerationPaths { most_recent: true });
    configs
}

/// Assert the sharded engine's final state is bit-identical to the
/// sequential reference: flow totals, every `buffered(v)`, every
/// `origins(v)` — `==` on floats throughout.
fn assert_bit_identical(
    sharded: &mut ShardedEngine,
    sequential: &mut ProvenanceEngine,
    n: usize,
    context: &str,
) {
    let report = sharded.report().unwrap();
    let seq_report = sequential.report();
    assert_eq!(
        report.total_quantity, seq_report.total_quantity,
        "total_quantity mismatch: {context}"
    );
    assert_eq!(
        report.newborn_quantity, seq_report.newborn_quantity,
        "newborn_quantity mismatch: {context}"
    );
    assert_eq!(
        report.relayed_quantity, seq_report.relayed_quantity,
        "relayed_quantity mismatch: {context}"
    );
    assert_eq!(report.interactions, seq_report.interactions, "{context}");
    for v in 0..n {
        let v = VertexId::from(v);
        assert_eq!(
            sharded.buffered(v).unwrap(),
            sequential.buffered(v),
            "buffered({v}) mismatch: {context}"
        );
        assert_eq!(
            sharded.origins(v).unwrap(),
            sequential.origins(v),
            "origins({v}) mismatch: {context}"
        );
    }
}

/// Run `body` under a watchdog: a hang becomes a loud panic, not a stuck CI
/// job (recovery bugs love to deadlock).
fn with_watchdog(body: impl FnOnce() + Send + 'static) {
    let worker = std::thread::spawn(body);
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while !worker.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "self-healing test hung"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    worker.join().unwrap();
}

// ---------------------------------------------------------------------------
// Acceptance criterion: kill-at-K × policy × shard count, bit-identical
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every factory policy and shards ∈ {2, 4, 7}, killing a worker at
    /// a random stream position recovers in-run and the final state is
    /// bit-identical to an undisturbed sequential run.
    #[test]
    fn kill_at_k_recovers_bit_identically(
        stream in interaction_stream(40),
        kill_frac in 0.0f64..1.0f64,
    ) {
        let n = MAX_VERTICES as usize;
        let kill_at = ((stream.len() as f64) * kill_frac) as usize;
        for config in all_configs(n) {
            let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
            sequential.process_all(&stream).unwrap();
            let seq_report = sequential.report();
            for shards in [2usize, 4, 7] {
                let victim = kill_at % shards;
                let mut sharded = ShardedEngine::new(&config, n, shards)
                    .unwrap()
                    .with_self_healing(healing(4, 8))
                    .unwrap();
                for (i, r) in stream.iter().enumerate() {
                    if i == kill_at {
                        sharded.inject_worker_panic(victim).unwrap();
                    }
                    sharded.process(r).unwrap();
                }
                let report = sharded.report().unwrap();
                prop_assert_eq!(
                    report.total_quantity,
                    seq_report.total_quantity,
                    "total_quantity mismatch under {} with {} shards, kill at {}",
                    config.key(),
                    shards,
                    kill_at
                );
                prop_assert_eq!(
                    report.newborn_quantity,
                    seq_report.newborn_quantity,
                    "newborn_quantity mismatch under {} with {} shards, kill at {}",
                    config.key(),
                    shards,
                    kill_at
                );
                for v in 0..n {
                    let v = VertexId::from(v);
                    prop_assert_eq!(
                        sharded.buffered(v).unwrap(),
                        sequential.buffered(v),
                        "buffered({}) mismatch under {} with {} shards, kill at {}",
                        v,
                        config.key(),
                        shards,
                        kill_at
                    );
                    prop_assert_eq!(
                        sharded.origins(v).unwrap(),
                        sequential.origins(v),
                        "origins({}) mismatch under {} with {} shards, kill at {}",
                        v,
                        config.key(),
                        shards,
                        kill_at
                    );
                }
                prop_assert!(sharded.recovery_stats().recoveries >= 1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Idempotent, race-free poisoning (two deaths in the same wavefront)
// ---------------------------------------------------------------------------

/// Fail-fast mode: two near-simultaneous worker deaths must poison the
/// engine exactly once (the first root cause wins) and never deadlock.
#[test]
fn double_kill_same_wavefront_poisons_once_without_healing() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
        let mut engine = ShardedEngine::new(&config, n, 4).unwrap();
        let stream: Vec<Interaction> = (0..32u32)
            .map(|i| Interaction::new(i % 9, (i % 9) + 1, f64::from(i), 1.0))
            .collect();
        engine.process_all(&stream[..16]).unwrap();
        // Two victims killed back-to-back: both sentinels broadcast into
        // the same wavefront's barrier.
        engine.inject_worker_panic(0).unwrap();
        let _ = engine.inject_worker_panic(1);
        let first = match engine.report() {
            Err(e @ TinError::WorkerLost { .. }) => e,
            other => panic!("expected WorkerLost, got {other:?}"),
        };
        // Every subsequent operation keeps surfacing the *first* error —
        // the second sentinel neither re-poisons nor deadlocks anything.
        for _ in 0..4 {
            match engine.report() {
                Err(e) => assert_eq!(e, first, "poisoning must be idempotent"),
                Ok(_) => panic!("poisoned engine served a report"),
            }
        }
        drop(engine);
    });
}

/// Healing mode: both deaths land in the same wavefront; one recovery
/// absorbs them (the second sentinel's notification dies with the old
/// channel generation) and the results still match the reference.
#[test]
fn double_kill_same_wavefront_heals_once() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
        let stream: Vec<Interaction> = (0..48u32)
            .map(|i| Interaction::new(i % 9, (i % 9) + 1, f64::from(i), 1.0 + f64::from(i % 3)))
            .collect();
        let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
        sequential.process_all(&stream).unwrap();

        let mut engine = ShardedEngine::new(&config, n, 4)
            .unwrap()
            .with_self_healing(healing(4, 8))
            .unwrap();
        engine.process_all(&stream[..24]).unwrap();
        engine.inject_worker_panic(0).unwrap();
        let _ = engine.inject_worker_panic(1);
        engine.process_all(&stream[24..]).unwrap();
        assert_bit_identical(&mut engine, &mut sequential, n, "double kill, healing");
        let stats = engine.recovery_stats();
        assert!(stats.recoveries >= 1);
        assert!(stats.last_rto_secs > 0.0);
    });
}

// ---------------------------------------------------------------------------
// Worker dies *during* recovery (respawn-within-respawn)
// ---------------------------------------------------------------------------

#[test]
fn death_during_recovery_consumes_budget_and_still_heals() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let stream: Vec<Interaction> = (0..40u32)
            .map(|i| Interaction::new(i % 7, (i % 7) + 2, f64::from(i), 2.0))
            .collect();
        let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
        sequential.process_all(&stream).unwrap();

        let shards = 3usize;
        let mut engine = ShardedEngine::new(&config, n, shards)
            .unwrap()
            .with_self_healing(healing(5, 16))
            .unwrap();
        engine.process_all(&stream[..20]).unwrap();
        // The next two respawned pools die immediately: recovery must chew
        // through the budget (attempts 1 and 2 fail, attempt 3 succeeds).
        engine.inject_panic_on_respawn(2);
        engine.inject_worker_panic(1).unwrap();
        engine.process_all(&stream[20..]).unwrap();
        assert_bit_identical(&mut engine, &mut sequential, n, "respawn-within-respawn");
        let stats = engine.recovery_stats();
        assert_eq!(stats.recoveries, 1, "one logical recovery");
        assert_eq!(
            stats.workers_respawned,
            3 * shards,
            "two failed attempts + one success, each a full pool"
        );
    });
}

#[test]
fn death_during_recovery_past_budget_falls_back_to_poison() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let stream: Vec<Interaction> = (0..20u32)
            .map(|i| Interaction::new(i % 7, (i % 7) + 2, f64::from(i), 2.0))
            .collect();
        let mut engine = ShardedEngine::new(&config, n, 3)
            .unwrap()
            .with_self_healing(healing(1, 16))
            .unwrap();
        engine.process_all(&stream[..10]).unwrap();
        // Budget of 1, and the single respawned pool dies too.
        engine.inject_panic_on_respawn(1);
        engine.inject_worker_panic(0).unwrap();
        let mut saw_worker_lost = false;
        for r in &stream[10..] {
            if let Err(e) = engine.process(r) {
                assert!(matches!(e, TinError::WorkerLost { .. }), "{e:?}");
                saw_worker_lost = true;
                break;
            }
        }
        if !saw_worker_lost {
            assert!(matches!(engine.report(), Err(TinError::WorkerLost { .. })));
        }
        // Sticky: the exhausted budget leaves the engine poisoned for good.
        assert!(matches!(engine.report(), Err(TinError::WorkerLost { .. })));
        drop(engine);
    });
}

// ---------------------------------------------------------------------------
// Checkpointing disabled: the in-memory barrier-snapshot path
// ---------------------------------------------------------------------------

/// No durable store anywhere: recovery restores purely from the in-memory
/// snapshot, with `snapshot_every` small enough that several snapshot
/// refreshes happen mid-stream before the kill.
#[test]
fn heals_from_in_memory_snapshot_without_durable_checkpoints() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        for snapshot_every in [4usize, 64] {
            let config = PolicyConfig::Windowed { window: 5 };
            let stream: Vec<Interaction> = (0..60u32)
                .map(|i| {
                    Interaction::new(
                        i % 9,
                        (i % 9) + 1,
                        f64::from(i) * 0.5,
                        1.5 + f64::from(i % 4),
                    )
                })
                .collect();
            let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
            sequential.process_all(&stream).unwrap();

            let mut engine = ShardedEngine::new(&config, n, 3)
                .unwrap()
                .with_self_healing(healing(3, snapshot_every))
                .unwrap();
            engine.process_all(&stream[..45]).unwrap();
            engine.inject_worker_panic(2).unwrap();
            engine.process_all(&stream[45..]).unwrap();
            assert_bit_identical(
                &mut engine,
                &mut sequential,
                n,
                &format!("in-memory snapshots, snapshot_every={snapshot_every}"),
            );
            let stats = engine.recovery_stats();
            assert_eq!(stats.recoveries, 1);
            // The replay is bounded by the snapshot interval: never more
            // than snapshot_every interactions re-processed per recovery.
            assert!(
                stats.replayed_interactions <= snapshot_every,
                "replayed {} > snapshot_every {snapshot_every}",
                stats.replayed_interactions
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Death after the final wavefront, before the last sync barrier
// ---------------------------------------------------------------------------

#[test]
fn death_between_final_wavefront_and_last_barrier_heals_on_report() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
        let stream: Vec<Interaction> = (0..30u32)
            .map(|i| Interaction::new(i % 8, (i % 8) + 1, f64::from(i), 3.0))
            .collect();
        let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
        sequential.process_all(&stream).unwrap();

        let mut engine = ShardedEngine::new(&config, n, 3)
            .unwrap()
            .with_self_healing(healing(3, 8))
            .unwrap();
        // Everything processed (wavefronts dispatched, maybe even drained)
        // but the closing barrier has not run yet: the kill lands between
        // the final wavefront and the report's quiesce.
        engine.process_all(&stream).unwrap();
        engine.inject_worker_panic(1).unwrap();
        assert_bit_identical(&mut engine, &mut sequential, n, "kill before last barrier");
        assert_eq!(engine.recovery_stats().recoveries, 1);
    });
}

// ---------------------------------------------------------------------------
// Durable checkpoints + self-healing combined
// ---------------------------------------------------------------------------

#[test]
fn heals_with_durable_checkpoints_enabled_and_keeps_saving() {
    use tin::core::checkpoint::CheckpointStore;
    with_watchdog(|| {
        let dir =
            std::env::temp_dir().join(format!("tin_self_heal_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
        let stream: Vec<Interaction> = (0..50u32)
            .map(|i| Interaction::new(i % 9, (i % 9) + 1, f64::from(i), 2.0 + f64::from(i % 5)))
            .collect();
        let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
        sequential.process_all(&stream).unwrap();

        let store = CheckpointStore::open(&dir).unwrap();
        let mut engine = ShardedEngine::new(&config, n, 3)
            .unwrap()
            .with_self_healing(healing(3, 1024))
            .unwrap()
            .with_durable_checkpoints(store, 10)
            .unwrap();
        engine.process_all(&stream[..25]).unwrap();
        engine.inject_worker_panic(0).unwrap();
        engine.process_all(&stream[25..]).unwrap();
        assert_bit_identical(&mut engine, &mut sequential, n, "durable + healing");
        assert_eq!(engine.recovery_stats().recoveries, 1);
        // Durable periodic saves adopt the snapshot, so the replay never
        // exceeds the *durable* interval here (1024 ≫ 10).
        assert!(engine.recovery_stats().replayed_interactions <= 10);
        let report = engine.report().unwrap();
        assert!(report.checkpoints_taken >= 4, "saves continued after heal");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

// ---------------------------------------------------------------------------
// Hang detection
// ---------------------------------------------------------------------------

/// A worker that stalls past `hang_timeout` is treated as lost: the pool is
/// replaced and the run completes bit-identically. The stalled thread is
/// detached and exits on its own once the sleep ends.
#[test]
fn hung_worker_is_detected_and_replaced() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let stream: Vec<Interaction> = (0..30u32)
            .map(|i| Interaction::new(i % 8, (i % 8) + 1, f64::from(i), 1.0))
            .collect();
        let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
        sequential.process_all(&stream).unwrap();

        let policy = RecoveryPolicy {
            hang_timeout: Some(Duration::from_millis(100)),
            ..healing(3, 8)
        };
        let mut engine = ShardedEngine::new(&config, n, 3)
            .unwrap()
            .with_self_healing(policy)
            .unwrap();
        engine.process_all(&stream[..15]).unwrap();
        // 1.5 s stall ≫ 100 ms budget: the next barrier times out.
        engine.inject_worker_stall(1, 1500).unwrap();
        engine.process_all(&stream[15..]).unwrap();
        assert_bit_identical(&mut engine, &mut sequential, n, "hung worker");
        assert_eq!(engine.recovery_stats().recoveries, 1);
    });
}

// ---------------------------------------------------------------------------
// Recovery observability
// ---------------------------------------------------------------------------

#[test]
fn recovery_metrics_and_span_land_in_obs() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let shards = 3usize;
        let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
        let stream: Vec<Interaction> = (0..40u32)
            .map(|i| Interaction::new(i % 9, (i % 9) + 1, f64::from(i), 2.0))
            .collect();
        let mut engine = ShardedEngine::new(&config, n, shards)
            .unwrap()
            .with_observability(tin_obs::Obs::new())
            .unwrap()
            .with_self_healing(healing(3, 8))
            .unwrap();
        engine.process_all(&stream[..20]).unwrap();
        engine.inject_worker_panic(2).unwrap();
        engine.process_all(&stream[20..]).unwrap();
        let _ = engine.report().unwrap();
        let stats = engine.recovery_stats();
        let obs = engine.take_obs().unwrap().expect("sink attached");
        let snap = obs.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("counter {name} registered"))
                .value
        };
        assert_eq!(counter("recoveries_total"), 1);
        assert_eq!(counter("worker_respawns_total"), shards as u64);
        assert_eq!(
            counter("replayed_interactions_total"),
            stats.replayed_interactions as u64
        );
        let rto = snap
            .histograms
            .iter()
            .find(|h| h.name == "recovery_ns")
            .expect("recovery_ns histogram registered");
        assert_eq!(rto.count, 1);
        assert!(rto.sum > 0);
        assert!(obs.trace.events().iter().any(|e| e.name == "recovery"));
    });
}

// ---------------------------------------------------------------------------
// Budget semantics
// ---------------------------------------------------------------------------

/// `max_worker_restarts: 0` is exactly the pre-existing fail-fast behavior
/// even with a recovery policy attached.
#[test]
fn zero_restart_budget_is_fail_fast() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let mut engine = ShardedEngine::new(&config, n, 3)
            .unwrap()
            .with_self_healing(healing(0, 8))
            .unwrap();
        engine
            .process(&Interaction::new(0u32, 1u32, 1.0, 2.0))
            .unwrap();
        engine.inject_worker_panic(0).unwrap();
        assert!(matches!(engine.report(), Err(TinError::WorkerLost { .. })));
        assert!(matches!(engine.report(), Err(TinError::WorkerLost { .. })));
        assert_eq!(engine.recovery_stats().recoveries, 0);
    });
}

/// The budget is engine-lifetime: repeated kills drain it, and the
/// (budget + 1)-th failure is terminal.
#[test]
fn repeated_kills_drain_the_lifetime_budget() {
    with_watchdog(|| {
        let n = MAX_VERTICES as usize;
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let stream: Vec<Interaction> = (0..60u32)
            .map(|i| Interaction::new(i % 7, (i % 7) + 2, f64::from(i), 1.0))
            .collect();
        let mut engine = ShardedEngine::new(&config, n, 2)
            .unwrap()
            .with_self_healing(healing(2, 16))
            .unwrap();
        engine.process_all(&stream[..10]).unwrap();
        engine.inject_worker_panic(0).unwrap();
        engine.process_all(&stream[10..20]).unwrap();
        let _ = engine.report().unwrap(); // first heal certainly done
        engine.inject_worker_panic(1).unwrap();
        engine.process_all(&stream[20..30]).unwrap();
        let _ = engine.report().unwrap(); // second heal done
        assert_eq!(engine.recovery_stats().recoveries, 2);
        // Third kill: budget exhausted, terminal.
        engine.inject_worker_panic(0).unwrap();
        let mut failed = false;
        for r in &stream[30..] {
            if engine.process(r).is_err() {
                failed = true;
                break;
            }
        }
        assert!(
            failed || engine.report().is_err(),
            "third failure must be terminal"
        );
        assert!(matches!(engine.report(), Err(TinError::WorkerLost { .. })));
    });
}
