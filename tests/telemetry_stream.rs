//! End-to-end telemetry streaming through the facade crate: both engines
//! emit delta-encoded JSONL records that a reader can reconcile back to the
//! ground truth of the run.
//!
//! The protocol contract under test (see `tin_obs::Telemetry`): the first
//! record is a `full` dump with units and absolute values, subsequent
//! records are `delta`-encoded (counters and histogram count/sum carry the
//! change, gauges and quantiles the current level), trace stats and the
//! skew sketches ride on every record as absolutes, and the stream ends
//! with an explicit `source: "final"` record at the stream length. Every
//! record is parsed back with `tin_obs::json` — the same parser `tin-cli
//! report` uses — so these tests also pin that each line is valid JSON.

use std::io::Write;
use std::sync::{Arc, Mutex};

use tin::prelude::*;
use tin_obs::json::Value;
use tin_obs::telemetry::TELEMETRY_SCHEMA;
use tin_obs::{Obs, Telemetry};
use tin_shard::ShardedEngine;

/// A telemetry sink the test can read back after the engine takes it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn records(&self) -> Vec<Value> {
        let bytes = self.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .expect("telemetry is UTF-8")
            .lines()
            .map(|l| Value::parse(l).expect("every record is one valid JSON line"))
            .collect()
    }
}

/// Deterministic ring-shaped stream: every vertex keeps relaying quantity,
/// so provenance state and the skew sketches all see real traffic.
fn workload(num_vertices: usize, rounds: u32) -> Vec<Interaction> {
    let mut time = 0.0;
    let mut interactions = Vec::new();
    for round in 0..rounds {
        for v in 0..num_vertices as u32 {
            let dst = (v + 1 + round % (num_vertices as u32 - 1)) % num_vertices as u32;
            if dst == v {
                continue;
            }
            time += 1.0;
            let qty = if round % 3 == 0 { 50.0 } else { 2.5 };
            interactions.push(Interaction::new(v, dst, time, qty));
        }
    }
    interactions
}

/// Structural checks shared by both engines: schema tag, dense sequence
/// numbers, full-then-delta kinds, non-decreasing positions, known sources,
/// and trace stats + sketches on every record.
fn check_stream_shape(records: &[Value], len: u64) {
    assert!(
        records.len() >= 3,
        "expected several records, got {}",
        records.len()
    );
    let mut prev_at = 0u64;
    for (i, r) in records.iter().enumerate() {
        assert_eq!(
            r.get("schema").and_then(Value::as_u64),
            Some(u64::from(TELEMETRY_SCHEMA))
        );
        assert_eq!(r.get("seq").and_then(Value::as_u64), Some(i as u64));
        let kind = r.get("kind").and_then(Value::as_str).unwrap();
        assert_eq!(kind, if i == 0 { "full" } else { "delta" });
        let at = r.get("at").and_then(Value::as_u64).unwrap();
        assert!(
            at >= prev_at,
            "record {i}: at went backwards ({at} < {prev_at})"
        );
        prev_at = at;
        let source = r.get("source").and_then(Value::as_str).unwrap();
        assert!(
            matches!(source, "interval" | "barrier" | "final"),
            "record {i}: unknown source {source:?}"
        );
        let trace = r.get("trace").expect("trace stats ride on every record");
        assert!(trace.get("capacity").and_then(Value::as_u64).unwrap() > 0);
        assert!(r.get("hot_vertices").and_then(Value::as_arr).is_some());
        assert!(r.get("hot_migrations").and_then(Value::as_arr).is_some());
    }
    let last = records.last().unwrap();
    assert_eq!(last.get("source").and_then(Value::as_str), Some("final"));
    assert_eq!(last.get("at").and_then(Value::as_u64), Some(len));
}

/// Accumulate a counter across the stream: absolute value from `full`
/// records, increments from `delta` records.
fn accumulate_counter(records: &[Value], name: &str) -> u64 {
    let mut total = 0u64;
    for r in records {
        let kind = r.get("kind").and_then(Value::as_str).unwrap();
        let c = r
            .get("counters")
            .and_then(|c| c.get(name))
            .unwrap_or_else(|| panic!("counter {name} on every record"));
        match kind {
            "full" => total = c.get("value").and_then(Value::as_u64).unwrap(),
            _ => total += c.as_u64().unwrap(),
        }
    }
    total
}

/// Accumulate a histogram's observation count the same way.
fn accumulate_hist_count(records: &[Value], name: &str) -> u64 {
    let mut total = 0u64;
    for r in records {
        let kind = r.get("kind").and_then(Value::as_str).unwrap();
        let h = r
            .get("histograms")
            .and_then(|h| h.get(name))
            .unwrap_or_else(|| panic!("histogram {name} on every record"));
        let count = h.get("count").and_then(Value::as_u64).unwrap();
        match kind {
            "full" => total = count,
            _ => total += count,
        }
    }
    total
}

#[test]
fn sequential_stream_reconciles_with_the_run() {
    let interactions = workload(8, 24);
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let buf = SharedBuf::default();
    let mut engine = ProvenanceEngine::new(&config, 8)
        .expect("valid config")
        .with_observability(Obs::new())
        .with_footprint_sample_interval(32)
        .expect("interval is positive")
        .with_telemetry(Telemetry::new(Box::new(buf.clone())), 16)
        .expect("interval is positive");
    engine.process_all(&interactions).expect("valid stream");
    engine
        .emit_telemetry("final")
        .expect("buffer writes succeed");

    let records = buf.records();
    check_stream_shape(&records, interactions.len() as u64);
    // Exactly one latency observation per interaction, reassembled purely
    // from the delta stream.
    assert_eq!(
        accumulate_hist_count(&records, "tracker_latency_ns"),
        interactions.len() as u64
    );
    // The footprint gauge carries a live level by the final record.
    let last = records.last().unwrap();
    let footprint = last
        .get("gauges")
        .and_then(|g| g.get("footprint_bytes"))
        .and_then(Value::as_u64)
        .expect("footprint gauge on delta records");
    assert!(footprint > 0);
    // Streaming never perturbs the computation itself.
    let report = engine.report();
    assert_eq!(report.interactions, interactions.len());
}

#[test]
fn sharded_stream_reconciles_and_matches_the_sequential_run() {
    let interactions = workload(8, 24);
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);

    let buf = SharedBuf::default();
    let mut sharded = ShardedEngine::new(&config, 8, 3)
        .expect("valid config")
        .with_observability(Obs::new())
        .expect("workers healthy")
        .with_telemetry(Telemetry::new(Box::new(buf.clone())), 8)
        .expect("interval is positive");
    sharded.process_all(&interactions).expect("valid stream");
    sharded
        .emit_telemetry("final")
        .expect("buffer writes succeed");
    let sharded_report = sharded.report().expect("workers healthy");

    let records = buf.records();
    check_stream_shape(&records, interactions.len() as u64);
    // Every interaction lands on exactly one owning shard — same-shard ones
    // as locals, cross-shard ones as imports on the destination shard — so
    // the delta-encoded counter stream must reassemble to the stream length.
    assert_eq!(
        accumulate_counter(&records, "shard_local_interactions_total")
            + accumulate_counter(&records, "shard_import_interactions_total"),
        interactions.len() as u64
    );
    // The skew sketches see real traffic by the end of the stream.
    let last = records.last().unwrap();
    let hot = last.get("hot_vertices").and_then(Value::as_arr).unwrap();
    assert!(!hot.is_empty(), "hot-vertex sketch stays empty");
    assert!(hot[0].get("weight").and_then(Value::as_u64).unwrap() > 0);

    // Telemetry-instrumented sharded flow accounting matches an entirely
    // uninstrumented sequential run.
    let mut sequential = ProvenanceEngine::new(&config, 8).expect("valid config");
    sequential.process_all(&interactions).expect("valid stream");
    let sequential_report = sequential.report();
    assert_eq!(sharded_report.interactions, sequential_report.interactions);
    assert_eq!(
        sharded_report.total_quantity,
        sequential_report.total_quantity
    );
    assert_eq!(
        sharded_report.newborn_quantity,
        sequential_report.newborn_quantity
    );
    assert_eq!(
        sharded_report.relayed_quantity,
        sequential_report.relayed_quantity
    );
}
