//! Property tests: the three proportional representations — dense vectors,
//! sparse lists, and the PR 2 runtime-adaptive representation — must give
//! identical provenance answers on arbitrary interaction streams.
//!
//! This is the safety net under the adaptive promotion/demotion machinery of
//! `tin_core::adaptive_vec`: whatever representation a vector happens to be
//! in, `buffered` and `origins` must match the dense reference within the
//! library tolerance, and quantity must be conserved.

use proptest::prelude::*;
use tin::prelude::*;

const MAX_VERTICES: u32 = 12;

/// A stream of valid interactions over a small vertex set with
/// non-decreasing timestamps (same construction as `proptest_invariants`).
fn interaction_stream(len: usize) -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec(
        (
            0..MAX_VERTICES,
            0..MAX_VERTICES - 1,
            0.01f64..100.0f64,
            0.0f64..5.0f64,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut time = 0.0;
        raw.into_iter()
            .map(|(src, dst_raw, qty, gap)| {
                let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                time += gap;
                Interaction::new(src, dst, time, qty)
            })
            .collect()
    })
}

/// Build the representations under test: the dense reference, plain sparse,
/// and adaptive trackers at several thresholds (0.01 promotes almost
/// immediately, 0.99 almost never — both extremes must agree with the
/// middle).
fn proportional_trackers(n: usize) -> Vec<Box<dyn ProvenanceTracker>> {
    vec![
        build_tracker(&PolicyConfig::Plain(SelectionPolicy::ProportionalDense), n).unwrap(),
        build_tracker(&PolicyConfig::Plain(SelectionPolicy::ProportionalSparse), n).unwrap(),
        build_tracker(
            &PolicyConfig::AdaptiveProportional {
                dense_threshold: 0.01,
            },
            n,
        )
        .unwrap(),
        build_tracker(&PolicyConfig::adaptive(), n).unwrap(),
        build_tracker(
            &PolicyConfig::AdaptiveProportional {
                dense_threshold: 0.99,
            },
            n,
        )
        .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All representations agree with the dense reference after every
    /// interaction: same buffered totals, same origin sets.
    #[test]
    fn representations_are_interchangeable(stream in interaction_stream(60)) {
        let n = MAX_VERTICES as usize;
        let mut trackers = proportional_trackers(n);
        for r in &stream {
            for t in trackers.iter_mut() {
                t.process(r);
            }
            for i in 0..n {
                let v = VertexId::from(i);
                let reference = trackers[0].buffered(v);
                let ref_origins = trackers[0].origins(v);
                for t in trackers.iter().skip(1) {
                    prop_assert!(
                        (t.buffered(v) - reference).abs() < 1e-6,
                        "{} buffered mismatch at {}: {} vs {}",
                        t.name(), v, t.buffered(v), reference
                    );
                    prop_assert!(
                        t.origins(v).approx_eq(&ref_origins),
                        "{} origin mismatch at {}: {:?} vs {:?}",
                        t.name(), v, t.origins(v), ref_origins
                    );
                }
            }
        }
    }

    /// Conservation (Definition 2) holds for every representation at the end
    /// of an arbitrary stream, including after sub-epsilon mass has been
    /// folded into α by the sparse kernels.
    #[test]
    fn conservation_holds_for_all_representations(stream in interaction_stream(80)) {
        let n = MAX_VERTICES as usize;
        let mut trackers = proportional_trackers(n);
        for r in &stream {
            for t in trackers.iter_mut() {
                t.process(r);
            }
        }
        for t in &trackers {
            prop_assert!(t.check_all_invariants(), "{} broke Definition 2", t.name());
        }
        let reference = trackers[0].total_buffered();
        for t in trackers.iter().skip(1) {
            prop_assert!(
                (t.total_buffered() - reference).abs() < 1e-6,
                "{} total mismatch: {} vs {}", t.name(), t.total_buffered(), reference
            );
        }
    }
}
