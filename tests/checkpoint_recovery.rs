//! Durable checkpoints and crash recovery — the robustness tentpole.
//!
//! Two layers of guarantees are exercised here:
//!
//! 1. **Crash → resume is bit-identical** for every factory policy, on both
//!    engines, across mismatched shard counts: a run interrupted at an
//!    arbitrary interaction K and resumed from its checkpoint produces the
//!    same `f64`s (compared with `==`, never approximately) as a run that
//!    never stopped. A checkpoint captured by a sharded engine restores into
//!    a sequential engine and vice versa, because the on-disk format is
//!    shard-count independent.
//! 2. **Corruption is detected, never installed**: a truncated or bit-flipped
//!    checkpoint file fails its section CRC and surfaces
//!    [`TinError::CorruptCheckpoint`]; recovery falls back to the previous
//!    retained checkpoint instead of hanging or loading partial state.

use proptest::prelude::*;
use tin::prelude::*;
use tin_core::checkpoint::{Checkpoint, CheckpointStore, RetentionPolicy, SCHEMA_VERSION};
use tin_core::engine::ProvenanceEngine;
use tin_shard::ShardedEngine;

const MAX_VERTICES: u32 = 10;

/// Strategy: a stream of valid interactions over a small vertex set with
/// non-decreasing timestamps (mirrors `sharded_equivalence.rs`).
fn interaction_stream(len: usize) -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec(
        (
            0..MAX_VERTICES,
            0..MAX_VERTICES - 1,
            0.01f64..100.0f64,
            0.0f64..5.0f64,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut time = 0.0;
        raw.into_iter()
            .map(|(src, dst_raw, qty, gap)| {
                let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                time += gap;
                Interaction::new(src, dst, time, qty)
            })
            .collect()
    })
}

/// Every policy configuration the factory can build.
fn all_configs(num_vertices: usize) -> Vec<PolicyConfig> {
    let mut configs: Vec<PolicyConfig> = SelectionPolicy::all()
        .into_iter()
        .map(PolicyConfig::Plain)
        .collect();
    configs.push(PolicyConfig::Selective {
        tracked: vec![VertexId::new(0), VertexId::new(3)],
    });
    configs.push(PolicyConfig::Grouped {
        num_groups: 3,
        group_of: (0..num_vertices).map(|v| (v % 3) as u32).collect(),
    });
    configs.push(PolicyConfig::Windowed { window: 5 });
    configs.push(PolicyConfig::TimeWindowed { duration: 7.5 });
    configs.push(PolicyConfig::adaptive());
    configs.push(PolicyConfig::budget(3));
    configs.push(PolicyConfig::PathTracking { lifo: false });
    configs.push(PolicyConfig::GenerationPaths { most_recent: true });
    configs
}

fn unique_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tin_recovery_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Assert a resumed engine's full observable state matches the reference
/// sequential engine bit for bit.
#[allow(clippy::needless_pass_by_value)]
fn assert_matches_reference(
    resumed_buffered: Vec<Quantity>,
    resumed_origins: Vec<OriginSet>,
    reference: &ProvenanceEngine,
    label: &str,
) {
    for (i, (buffered, origins)) in resumed_buffered
        .into_iter()
        .zip(resumed_origins)
        .enumerate()
    {
        let v = VertexId::new(i as u32);
        assert_eq!(buffered, reference.buffered(v), "buffered({v}) {label}");
        assert_eq!(origins, reference.origins(v), "origins({v}) {label}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Crash at interaction K, resume, replay the tail: bit-identical to an
    /// uninterrupted run for every policy, with checkpoints captured by the
    /// sequential engine AND by a 2-shard engine, resumed into the
    /// sequential engine AND into 2- and 4-shard engines (mismatched shard
    /// counts included).
    #[test]
    fn crash_and_resume_is_bit_identical(
        stream in interaction_stream(36),
        k_frac in 0.0f64..1.0,
    ) {
        let n = MAX_VERTICES as usize;
        let k = ((stream.len() as f64) * k_frac) as usize;
        for config in all_configs(n) {
            // Uninterrupted reference run.
            let mut reference = ProvenanceEngine::new(&config, n).unwrap();
            reference.process_all(&stream).unwrap();
            let ref_report = reference.report();

            // Interrupted runs: one sequential, one 2-shard, both "crash"
            // right after capturing a checkpoint at interaction K.
            let mut seq = ProvenanceEngine::new(&config, n).unwrap();
            seq.process_all(&stream[..k]).unwrap();
            let seq_ckpt = seq.checkpoint().unwrap();
            drop(seq);

            let mut sharded = ShardedEngine::new(&config, n, 2).unwrap();
            sharded.process_all(&stream[..k]).unwrap();
            let sharded_ckpt = sharded.checkpoint().unwrap();
            drop(sharded);

            // The captured states are engine-independent: a 2-shard capture
            // equals a sequential capture, entry for entry.
            prop_assert_eq!(
                &seq_ckpt.states,
                &sharded_ckpt.states,
                "capture mismatch under {} at k={}",
                config.key(),
                k
            );
            prop_assert_eq!(seq_ckpt.cursor.processed, k);
            prop_assert_eq!(seq_ckpt.cursor.total_quantity, sharded_ckpt.cursor.total_quantity);
            prop_assert_eq!(seq_ckpt.cursor.newborn_quantity, sharded_ckpt.cursor.newborn_quantity);

            for (ckpt, from) in [(&seq_ckpt, "seq"), (&sharded_ckpt, "sharded2")] {
                // Round-trip through the on-disk byte format.
                let ckpt = Checkpoint::decode(&ckpt.encode(), "").unwrap();

                // Resume sequentially.
                let mut resumed = ProvenanceEngine::resume_from(&ckpt).unwrap();
                resumed.process_all(&stream[k..]).unwrap();
                let report = resumed.report();
                prop_assert_eq!(report.total_quantity, ref_report.total_quantity);
                prop_assert_eq!(report.newborn_quantity, ref_report.newborn_quantity);
                let buffered: Vec<Quantity> =
                    (0..n).map(|v| resumed.buffered(VertexId::from(v))).collect();
                let origins: Vec<OriginSet> =
                    (0..n).map(|v| resumed.origins(VertexId::from(v))).collect();
                assert_matches_reference(
                    buffered,
                    origins,
                    &reference,
                    &format!("{from}->seq under {} k={k}", config.key()),
                );

                // Resume sharded, including a shard count different from the
                // one that captured the checkpoint.
                for shards in [2usize, 4] {
                    let mut resumed = ShardedEngine::resume_from(&ckpt, shards).unwrap();
                    resumed.process_all(&stream[k..]).unwrap();
                    let report = resumed.report().unwrap();
                    prop_assert_eq!(report.total_quantity, ref_report.total_quantity);
                    prop_assert_eq!(report.newborn_quantity, ref_report.newborn_quantity);
                    let buffered = resumed.buffered_all().unwrap();
                    let origins: Vec<OriginSet> = (0..n)
                        .map(|v| resumed.origins(VertexId::from(v)).unwrap())
                        .collect();
                    assert_matches_reference(
                        buffered,
                        origins,
                        &reference,
                        &format!("{from}->sharded{shards} under {} k={k}", config.key()),
                    );
                }
            }
        }
    }
}

/// Truncating a checkpoint file at every prefix length is detected by the
/// section checksums / length framing — never a panic, hang, or silent
/// partial load.
#[test]
fn truncated_files_are_rejected() {
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let mut engine = ProvenanceEngine::new(&config, 6).unwrap();
    engine
        .process_all(&[
            Interaction::new(0u32, 1u32, 1.0, 2.0),
            Interaction::new(1u32, 2u32, 2.0, 1.5),
        ])
        .unwrap();
    let bytes = engine.checkpoint().unwrap().encode();
    for len in 0..bytes.len() {
        let result = Checkpoint::decode(&bytes[..len], "t.tin");
        assert!(
            matches!(result, Err(TinError::CorruptCheckpoint { .. })),
            "truncation to {len} bytes went undetected"
        );
    }
}

/// Flipping any single bit of a checkpoint file is caught by a section CRC
/// (or the header checks) as `CorruptCheckpoint` / version mismatch.
#[test]
fn bit_flips_are_rejected() {
    let config = PolicyConfig::GenerationPaths { most_recent: false };
    let mut engine = ProvenanceEngine::new(&config, 5).unwrap();
    engine
        .process_all(&[
            Interaction::new(0u32, 1u32, 1.0, 2.0),
            Interaction::new(1u32, 4u32, 2.0, 3.0),
        ])
        .unwrap();
    let clean = engine.checkpoint().unwrap().encode();
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bytes = clean.clone();
            bytes[byte] ^= 1 << bit;
            let result = Checkpoint::decode(&bytes, "flip.tin");
            assert!(
                matches!(
                    result,
                    Err(TinError::CorruptCheckpoint { .. })
                        | Err(TinError::CheckpointVersionMismatch { .. })
                ),
                "flip of bit {bit} in byte {byte} went undetected"
            );
        }
    }
}

/// End-to-end fallback: with several retained checkpoints on disk and the
/// newest one corrupted, recovery loads the previous checkpoint, resumes,
/// and still converges to the uninterrupted result.
#[test]
fn recovery_falls_back_to_previous_retained_checkpoint() {
    let dir = unique_dir("fallback");
    let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
    let n = 6usize;
    let stream: Vec<Interaction> = (0..12)
        .map(|i| {
            Interaction::new(
                (i % 5) as u32,
                ((i % 5) + 1) as u32,
                i as f64,
                1.0 + i as f64,
            )
        })
        .collect();

    let store = CheckpointStore::open(&dir).unwrap();
    let mut engine = ProvenanceEngine::new(&config, n)
        .unwrap()
        .with_durable_checkpoints(store, 4)
        .unwrap();
    // "Crash" after 11 interactions: checkpoints exist at 4 and 8.
    engine.process_all(&stream[..11]).unwrap();
    drop(engine);

    // Corrupt the newest checkpoint (position 8) on disk.
    let store = CheckpointStore::open(&dir).unwrap();
    let newest = store.latest().unwrap().unwrap();
    assert!(newest.to_string_lossy().contains("000000000008"));
    let mut bytes = std::fs::read(&newest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&newest, &bytes).unwrap();

    // Reading the corrupt file directly fails loudly...
    let err = Checkpoint::read(&newest).unwrap_err();
    assert!(
        matches!(&err, TinError::CorruptCheckpoint { path, section, .. }
        if path.contains("000000000008") && section == "states")
    );

    // ...and recovery falls back to the checkpoint at position 4.
    let (path, checkpoint) = store.load_latest_valid().unwrap().unwrap();
    assert!(path.to_string_lossy().contains("000000000004"));
    assert_eq!(checkpoint.cursor.processed, 4);

    // Resuming from the fallback still reaches the uninterrupted result.
    let mut resumed = ProvenanceEngine::resume_from(&checkpoint).unwrap();
    resumed.process_all(&stream[4..]).unwrap();
    let mut reference = ProvenanceEngine::new(&config, n).unwrap();
    reference.process_all(&stream).unwrap();
    for v in 0..n {
        let v = VertexId::from(v);
        assert_eq!(resumed.buffered(v), reference.buffered(v));
        assert_eq!(resumed.origins(v), reference.origins(v));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A checkpoint from a future schema version is refused with
/// `CheckpointVersionMismatch`, not misparsed.
#[test]
fn future_schema_versions_are_refused() {
    let config = PolicyConfig::Windowed { window: 3 };
    let mut engine = ProvenanceEngine::new(&config, 4).unwrap();
    engine
        .process(&Interaction::new(0u32, 1u32, 1.0, 2.0))
        .unwrap();
    let mut bytes = engine.checkpoint().unwrap().encode();
    bytes[8] = SCHEMA_VERSION as u8 + 1;
    assert!(matches!(
        Checkpoint::decode(&bytes, ""),
        Err(TinError::CheckpointVersionMismatch {
            supported: SCHEMA_VERSION,
            ..
        })
    ));
}

/// Retention keeps the store bounded while a long run checkpoints
/// periodically — and the newest checkpoint always survives.
#[test]
fn retention_bounds_the_store_during_a_run() {
    let dir = unique_dir("retention");
    let store = CheckpointStore::open(&dir)
        .unwrap()
        .with_retention(RetentionPolicy {
            max_count: 3,
            max_age: None,
        });
    let config = PolicyConfig::Plain(SelectionPolicy::Lifo);
    let mut engine = ProvenanceEngine::new(&config, 4)
        .unwrap()
        .with_durable_checkpoints(store, 2)
        .unwrap();
    for i in 0..20 {
        engine
            .process(&Interaction::new((i % 3) as u32, 3u32, i as f64, 1.0))
            .unwrap();
    }
    assert_eq!(engine.report().checkpoints_taken, 10);
    let store = CheckpointStore::open(&dir).unwrap();
    let files = store.list().unwrap();
    assert_eq!(files.len(), 3, "retention keeps exactly max_count files");
    assert!(files[2].to_string_lossy().contains("000000000020"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The sharded engine's periodic durable checkpoints: counted in the report
/// (regression test for the hardcoded `checkpoints_taken: 0`) and usable for
/// recovery into a different shard count.
#[test]
fn sharded_periodic_checkpoints_are_counted_and_recoverable() {
    let dir = unique_dir("sharded_periodic");
    let config = PolicyConfig::Plain(SelectionPolicy::ProportionalDense);
    let n = 8usize;
    let stream: Vec<Interaction> = (0..14)
        .map(|i| Interaction::new((i % 7) as u32, ((i % 7) + 1) as u32, i as f64, 2.0))
        .collect();

    let store = CheckpointStore::open(&dir).unwrap();
    let mut engine = ShardedEngine::new(&config, n, 3)
        .unwrap()
        .with_durable_checkpoints(store, 5)
        .unwrap();
    engine.process_all(&stream[..13]).unwrap();
    let report = engine.report().unwrap();
    assert_eq!(report.checkpoints_taken, 2, "checkpoints at 5 and 10");
    drop(engine);

    let store = CheckpointStore::open(&dir).unwrap();
    let (_, checkpoint) = store.load_latest_valid().unwrap().unwrap();
    assert_eq!(checkpoint.cursor.processed, 10);
    // Recover across a different shard count and finish the stream.
    let mut resumed = ShardedEngine::resume_from(&checkpoint, 2).unwrap();
    resumed.process_all(&stream[10..]).unwrap();
    let mut reference = ProvenanceEngine::new(&config, n).unwrap();
    reference.process_all(&stream).unwrap();
    let buffered = resumed.buffered_all().unwrap();
    for (i, b) in buffered.into_iter().enumerate() {
        let v = VertexId::new(i as u32);
        assert_eq!(b, reference.buffered(v));
        assert_eq!(resumed.origins(v).unwrap(), reference.origins(v));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
