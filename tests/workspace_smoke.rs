//! Workspace wiring smoke test.
//!
//! The facade crate re-exports four library crates plus a prelude; this test
//! exercises one public item from each so that a manifest regression (a
//! dropped dependency, a renamed lib target, a broken re-export) fails loudly
//! in tier-1 (`cargo test`) rather than only at bench or CLI build time.

use tin::prelude::*;

/// `tin::core` is wired: build a tracker directly through the re-export.
#[test]
fn core_reexport_is_usable() {
    let mut tracker = tin::core::tracker::proportional_dense::ProportionalDenseTracker::new(3);
    let interactions = tin::core::interaction::paper_running_example();
    tracker.process_all(&interactions);
    assert!(tracker.check_all_invariants());
}

/// `tin::datasets` is wired: generate a tiny synthetic workload.
#[test]
fn datasets_reexport_is_usable() {
    let spec = tin::datasets::DatasetSpec::new(
        tin::datasets::DatasetKind::Taxis,
        tin::datasets::ScaleProfile::Tiny,
    );
    let tin = tin::datasets::generate_tin(&spec);
    assert_eq!(tin.num_interactions(), spec.num_interactions());
    assert!(tin.num_vertices() > 0);
}

/// `tin::analytics` is wired: summarize a tracked distribution.
#[test]
fn analytics_reexport_is_usable() {
    let interactions = tin::core::interaction::paper_running_example();
    let mut tracker = tin::core::tracker::proportional_dense::ProportionalDenseTracker::new(3);
    tracker.process_all(&interactions);
    let origins = tracker.origins(tin::core::ids::VertexId::new(0));
    let distribution = tin::analytics::distribution::ProvenanceDistribution::from_origins(&origins);
    assert!(distribution.entropy_bits() >= 0.0);
}

/// `tin::memstats` is wired: a scope measurement completes. This test binary
/// does not install the counting allocator, so the documented contract is
/// that the scope reports exactly zero rather than garbage.
#[test]
fn memstats_reexport_is_usable() {
    let scope = tin::memstats::MemoryScope::start();
    let data: Vec<u64> = (0..1024).collect();
    std::hint::black_box(&data);
    let report = scope.finish();
    assert_eq!(report.peak_delta_bytes, 0);
}

/// The prelude exposes the working vocabulary: types from all four crates
/// resolve from a single glob import.
#[test]
fn prelude_covers_the_working_vocabulary() {
    let spec = DatasetSpec::new(DatasetKind::Bitcoin, ScaleProfile::Tiny);
    let tin = tin::datasets::generate_tin(&spec);
    let mut tracker = ProportionalDenseTracker::new(tin.num_vertices());
    tracker.process_all(tin.interactions());
    let busiest = tin
        .vertices()
        .max_by_key(|v| tin.in_degree(*v))
        .expect("generated network has vertices");
    let origins: OriginSet = tracker.origins(busiest);
    assert!(origins.total() >= 0.0);
}
