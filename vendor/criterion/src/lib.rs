//! Offline stub of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of criterion's surface that `tin-bench`'s six bench targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a real (if simple) harness, not a no-op: each benchmark is warmed up
//! and then timed for `measurement_time`, and the mean wall-clock time per
//! iteration is printed together with derived throughput. There is no
//! statistical analysis, outlier rejection or HTML report — swap in the real
//! crate via `[workspace.dependencies]` when network access is available.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for drop-in compatibility.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with parameter `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and fault in lazy state.
        black_box(routine());
        let mut iters: u64 = 0;
        let started = Instant::now();
        let deadline = started + self.measurement_time;
        loop {
            for _ in 0..self.samples {
                black_box(routine());
                iters += 1;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        self.mean_secs = started.elapsed().as_secs_f64() / iters as f64;
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of iterations per timing sample.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the (nominal) warm-up duration.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.config.warm_up_time = t;
        self
    }

    /// Sets the measurement window for each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Accepted for compatibility with generated `criterion_group!` code;
    /// command-line filtering is not implemented in the stub.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let config = self.config;
        run_one(&id.to_string(), config, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate numbers for this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the per-sample iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.config, self.throughput, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.config, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group. (All reporting already happened inline.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    config: Config,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: config.sample_size,
        measurement_time: config.measurement_time,
        mean_secs: 0.0,
    };
    f(&mut bencher);
    let mean = bencher.mean_secs;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!("{label:<60} time: {}{rate}", format_time(mean));
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
