//! Offline stub of the slice of [`proptest`](https://proptest-rs.github.io)
//! that this workspace's property tests use.
//!
//! The build environment has no crates.io access. The tests need: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`], numeric range
//! strategies, tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! [`Strategy::prop_map`](strategy::Strategy::prop_map) and `ProptestConfig::with_cases`. This crate
//! implements exactly that: each test runs `cases` deterministic random
//! inputs (seeded from the test's module path and name, so failures
//! reproduce) and reports the first failing case.
//!
//! Differences from real proptest, deliberately accepted: no shrinking (a
//! failing case prints its seed and case number instead of a minimal
//! counterexample), no persistence file, and no `prop_oneof`/`any::<T>()`
//! combinators beyond what the suite uses. Swap in the genuine crate via
//! `[workspace.dependencies]` when network access is available.

pub mod test_runner {
    //! Configuration, error type and the deterministic RNG behind each test.

    use std::fmt;

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run for each property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros inside a property body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed property with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// SplitMix64 generator seeded from the test's fully qualified name, so
    /// every run of a given test sees the same case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (FNV-1a hashed).
        pub fn deterministic(label: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: hash }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the test suite uses.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Strategy that always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = u128::from(rng.next_u64()) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements specification accepted by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace of strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]` functions
/// whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(error) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        error
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body, failing the current case
/// (rather than panicking directly) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}
