//! Offline stub of `serde_derive`.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to an empty token
//! stream: the workspace only uses the derives as markers and never drives a
//! real serializer. `attributes(serde)` is declared so any `#[serde(...)]`
//! field or container attributes parse cleanly.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
