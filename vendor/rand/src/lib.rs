//! Offline stub of the tiny slice of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no crates.io access, and the dataset generators
//! only need a seedable, reproducible uniform generator: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` and
//! `Rng::gen_bool`. The generator is xoshiro256++ seeded through SplitMix64 —
//! statistically solid for workload synthesis, deliberately not cryptographic
//! (neither is the real `StdRng`'s contract for this use).
//!
//! Sequences are stable across runs and platforms for a given seed, which is
//! what the dataset generators and benches rely on. They will differ from the
//! real `rand` crate's sequences; nothing in the workspace depends on those.

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <f64 as Standard>::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Closed interval: scale a 53-bit draw by 1/(2^53 - 1) so the
                // unit is in [0, 1] and `hi` itself is reachable.
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let c: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&c));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
