//! Offline stub of the [`serde`](https://serde.rs) facade.
//!
//! The build environment for this repository has no access to crates.io, and
//! the workspace only uses serde to *mark* types as serializable via
//! `#[derive(Serialize, Deserialize)]` — nothing in the tree drives an actual
//! serializer (snapshots use their own line-oriented text format). This stub
//! therefore provides just the two trait names and derive macros that expand
//! to nothing, which is enough for every `use serde::{Deserialize,
//! Serialize}` in the workspace to compile.
//!
//! If the repository later gains real serialization needs, replace this stub
//! with the genuine crate by swapping the `[workspace.dependencies]` path
//! entry for a registry version; no source changes are required.

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not even emit an `impl` of this trait; it exists so
/// that `use serde::Serialize` resolves in both the trait and macro
/// namespaces, exactly as with the real crate.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
